"""Project rules RL007-RL010 and the semantic core behind them.

Every test drives the full engine over a fixture project (config, walk,
parse, symbol table, call graph, locks, taint), mirroring the style of
``test_rules.py``.  The fixture ``pyproject.toml`` (see ``conftest.py``)
guards locks in ``pkg/runtime/pool.py`` and ``pkg/service.py`` and
declares ``pkg.keys.spec_key`` / ``pkg.keys.JobSpec`` / ``pkg.report.
render`` as RL009 sinks.
"""

from __future__ import annotations

import json
import random

from repro.lint.baseline import write_baseline

#: The hashed-spec module every RL009 fixture calls into.
KEYS = """\
    import hashlib


    class JobSpec:
        def __init__(self, name, payload):
            self.name = name
            self.payload = payload


    def spec_key(payload):
        blob = repr(sorted(payload.items())).encode()
        return hashlib.sha256(blob).hexdigest()
    """

#: The PR 8 review bug, reduced: a mid-batch reconfigure joining worker
#: processes while still holding the pool lock every dispatch needs.
PR8_REGRESSION = """\
    import threading


    class WorkerPool:
        def __init__(self):
            self._lock = threading.RLock()
            self._executor = None

        def configure(self, executor):
            with self._lock:
                stale = self._executor
                self._executor = executor
                if stale is not None:
                    stale.shutdown(wait=True)
    """

#: The shape the review fix gave runtime/pool.py: swap under the lock,
#: join outside it.
PR8_FIXED = """\
    import threading


    class WorkerPool:
        def __init__(self):
            self._lock = threading.RLock()
            self._executor = None

        def configure(self, executor):
            stale = None
            try:
                with self._lock:
                    stale = self._executor
                    self._executor = executor
            finally:
                if stale is not None:
                    stale.shutdown(wait=True)
    """


def _rules(result):
    return sorted({f.rule for f in result.new})


def _messages(result, rule):
    return [f.message for f in result.new if f.rule == rule]


def _baseline_fixture(lint_project):
    """Freeze the project's current findings into its baseline file."""
    raw = lint_project.run(use_baseline=False)
    write_baseline(lint_project.root / "lint-baseline.json",
                   raw.findings, [])


# -- RL007: blocking call under a guarded lock ----------------------------

class TestRL007:
    def test_pr8_regression_shutdown_under_rlock_flagged(self,
                                                         lint_project):
        lint_project.write("pkg/runtime/pool.py", PR8_REGRESSION)
        result = lint_project.run()
        assert _rules(result) == ["RL007"]
        message, = _messages(result, "RL007")
        assert "shutdown(wait=True)" in message
        assert "pkg.runtime.pool.WorkerPool._lock" in message

    def test_pr8_fix_shape_passes(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", PR8_FIXED)
        assert lint_project.rules_hit() == []

    def test_blocking_reached_through_call_chain_flagged(self,
                                                         lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading
            import time

            _LOCK = threading.Lock()


            def drain():
                with _LOCK:
                    _settle()


            def _settle():
                _really_settle()


            def _really_settle():
                time.sleep(0.1)
            """)
        result = lint_project.run()
        assert _rules(result) == ["RL007"]
        message, = _messages(result, "RL007")
        assert "time.sleep()" in message
        assert ("pkg.runtime.pool.drain -> pkg.runtime.pool._settle "
                "-> pkg.runtime.pool._really_settle") in message

    def test_future_result_and_join_under_lock_flagged(self,
                                                       lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading


            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_all(self, futures, worker):
                    with self._lock:
                        done = [f.result() for f in futures]
                        worker.join()
                    return done
            """)
        result = lint_project.run()
        assert [f.rule for f in result.new] == ["RL007", "RL007"]

    def test_str_join_under_lock_not_confused(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading

            _LOCK = threading.Lock()


            def render(parts):
                with _LOCK:
                    return ", ".join(parts)
            """)
        assert lint_project.rules_hit() == []

    def test_condition_wait_on_held_lock_ok(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading


            class Gate:
                def __init__(self):
                    self._cond = threading.Condition()

                def block_until_open(self):
                    with self._cond:
                        while not self.is_open():
                            self._cond.wait()

                def is_open(self):
                    return True
            """)
        assert lint_project.rules_hit() == []

    def test_wait_on_other_object_under_lock_flagged(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading

            _LOCK = threading.Lock()


            def stall(event):
                with _LOCK:
                    event.wait()
            """)
        assert lint_project.rules_hit() == ["RL007"]

    def test_unguarded_lock_file_not_flagged(self, lint_project):
        # Same code, but the lock lives outside rl007-lock-paths.
        lint_project.write("pkg/elsewhere.py", PR8_REGRESSION)
        assert lint_project.rules_hit() == []

    def test_acquire_release_region_flagged(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading
            import time

            _LOCK = threading.Lock()


            def locked_sleep():
                _LOCK.acquire()
                time.sleep(0.5)
                _LOCK.release()


            def sleep_after_release():
                _LOCK.acquire()
                _LOCK.release()
                time.sleep(0.5)
            """)
        result = lint_project.run()
        # Anchored at the blocking call, not the acquire.
        assert [(f.rule, f.line) for f in result.new] == [("RL007", 9)]

    def test_suppression_comment(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", """\
            import threading
            import time

            _LOCK = threading.Lock()


            def settle():
                with _LOCK:
                    time.sleep(0.01)  # repro-lint: disable=RL007
            """)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["RL007"]

    def test_baselined(self, lint_project):
        lint_project.write("pkg/runtime/pool.py", PR8_REGRESSION)
        _baseline_fixture(lint_project)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.baselined] == ["RL007"]


# -- RL008: lock-order inversion ------------------------------------------

INVERSION = """\
    import threading

    lock_a = threading.Lock()
    lock_b = threading.Lock()


    def forward():
        with lock_a:
            with lock_b:
                pass


    def backward():
        with lock_b:
            with lock_a:
                pass
    """


class TestRL008:
    def test_opposite_orders_flagged_with_both_paths(self, lint_project):
        lint_project.write("pkg/order.py", INVERSION)
        result = lint_project.run()
        assert _rules(result) == ["RL008"]
        message, = _messages(result, "RL008")
        assert "pkg.order.forward" in message
        assert "pkg.order.backward" in message
        assert "pkg/order.py:9" in message
        assert "pkg/order.py:15" in message

    def test_consistent_order_ok(self, lint_project):
        lint_project.write("pkg/order.py", """\
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()


            def first():
                with lock_a:
                    with lock_b:
                        pass


            def second():
                with lock_a:
                    with lock_b:
                        pass
            """)
        assert lint_project.rules_hit() == []

    def test_inversion_through_call_chain_flagged(self, lint_project):
        lint_project.write("pkg/order.py", """\
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()


            def forward():
                with lock_a:
                    _grab_b()


            def _grab_b():
                with lock_b:
                    pass


            def backward():
                with lock_b:
                    _grab_a()


            def _grab_a():
                with lock_a:
                    pass
            """)
        result = lint_project.run()
        assert _rules(result) == ["RL008"]
        message, = _messages(result, "RL008")
        assert "pkg.order.forward -> pkg.order._grab_b" in message
        assert "pkg.order.backward -> pkg.order._grab_a" in message

    def test_multi_item_with_statement_orders(self, lint_project):
        lint_project.write("pkg/order.py", """\
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()


            def forward():
                with lock_a, lock_b:
                    pass


            def backward():
                with lock_b, lock_a:
                    pass
            """)
        assert lint_project.rules_hit() == ["RL008"]

    def test_suppression_comment(self, lint_project):
        # The finding anchors at the inner acquisition of the first
        # witness, so that's where the disable comment belongs.
        source = INVERSION.replace(
            "with lock_b:",
            "with lock_b:  # repro-lint: disable=RL008", 1)
        lint_project.write("pkg/order.py", source)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["RL008"]

    def test_baselined(self, lint_project):
        lint_project.write("pkg/order.py", INVERSION)
        _baseline_fixture(lint_project)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.baselined] == ["RL008"]


# -- RL009: nondeterminism taint into hashed specs ------------------------

class TestRL009:
    def test_wall_clock_into_spec_key_flagged(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import time

            from pkg.keys import spec_key


            def build(n):
                payload = {"n": n, "at": time.time()}
                return spec_key(payload)
            """)
        result = lint_project.run()
        assert _rules(result) == ["RL009"]
        message, = _messages(result, "RL009")
        assert "wall clock" in message
        assert "pkg.keys.spec_key" in message

    def test_taint_through_helper_return_flagged(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import time

            from pkg.keys import spec_key


            def _stamp():
                return time.time()


            def build(n):
                return spec_key({"n": n, "at": _stamp()})
            """)
        assert lint_project.rules_hit() == ["RL009"]

    def test_taint_through_parameter_into_sink_reports_path(
            self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import os

            from pkg.keys import spec_key


            def _finish(payload):
                return spec_key(payload)


            def build(n):
                return _finish({"n": n, "pid": os.getpid()})
            """)
        result = lint_project.run()
        assert _rules(result) == ["RL009"]
        message, = _messages(result, "RL009")
        assert "process/thread id" in message
        assert "pkg.build.build -> pkg.build._finish" in message

    def test_jobspec_constructor_is_a_sink(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import random

            from pkg.keys import JobSpec


            def build(name):
                nonce = random.random()  # repro-lint: disable=RL002
                return JobSpec(name, {"nonce": nonce})
            """)
        result = lint_project.run()
        assert _rules(result) == ["RL009"]
        message, = _messages(result, "RL009")
        assert "RNG" in message

    def test_env_and_listdir_taints_flagged(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import os

            from pkg.keys import spec_key


            def from_env():
                return spec_key({"home": os.environ["HOME"]})


            def from_listing(root):
                files = os.listdir(root)  # repro-lint: disable=RL001
                return spec_key({"files": files})
            """)
        result = lint_project.run()
        assert [f.rule for f in result.new] == ["RL009", "RL009"]

    def test_deterministic_inputs_ok(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import os
            import time

            from pkg.keys import spec_key


            def build(root, n, seed):
                files = sorted(os.listdir(root))
                raw = os.listdir(root)  # repro-lint: disable=RL001
                count = len(raw)
                elapsed = time.perf_counter()
                del elapsed
                return spec_key({"files": files, "count": count,
                                 "n": n, "seed": seed})
            """)
        assert lint_project.rules_hit() == []

    def test_taint_not_reaching_sink_ok(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import time

            from pkg.keys import spec_key


            def build(n):
                started = time.time()
                key = spec_key({"n": n})
                return key, time.time() - started
            """)
        # RL003 would flag this in runtime/ paths; here only the flow
        # into the sink matters, and there is none.
        assert lint_project.rules_hit() == []

    def test_suppression_comment(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import time

            from pkg.keys import spec_key


            def build(n):
                payload = {"n": n, "at": time.time()}
                return spec_key(payload)  # repro-lint: disable=RL009
            """)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["RL009"]

    def test_baselined(self, lint_project):
        lint_project.write("pkg/keys.py", KEYS)
        lint_project.write("pkg/build.py", """\
            import time

            from pkg.keys import spec_key


            def build(n):
                return spec_key({"n": n, "at": time.time()})
            """)
        _baseline_fixture(lint_project)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.baselined] == ["RL009"]


# -- RL010: cross-function writable-view escape ---------------------------

#: A factory that intentionally returns a writable view (the publish
#: path needs one); RL004 is suppressed at the source, so what remains
#: is the *callers'* obligation to freeze before storing — RL010's job.
FACTORY = """\
    import numpy as np


    def attach(segment, shape):
        view = np.ndarray(  # repro-lint: disable=RL004
            shape, dtype="f8", buffer=segment.buf)
        return view
    """


class TestRL010:
    def test_store_before_freeze_flagged(self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def collect(segment, shape, registry):
                view = attach(segment, shape)
                registry["x"] = view
                view.flags.writeable = False
            """)
        result = lint_project.run()
        assert _rules(result) == ["RL010"]
        message, = _messages(result, "RL010")
        assert "pkg.views.attach" in message

    def test_freeze_before_store_ok(self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def collect(segment, shape, registry):
                view = attach(segment, shape)
                view.flags.writeable = False
                registry["x"] = view
            """)
        assert lint_project.rules_hit() == []

    def test_yield_direct_flagged(self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def windows(segments, shape):
                for segment in segments:
                    yield attach(segment, shape)
            """)
        assert lint_project.rules_hit() == ["RL010"]

    def test_store_call_result_directly_flagged(self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def register(segment, shape, registry):
                registry["x"] = attach(segment, shape)
            """)
        assert lint_project.rules_hit() == ["RL010"]

    def test_frozen_factory_ok(self, lint_project):
        lint_project.write("pkg/views.py", """\
            import numpy as np


            def attach(segment, shape):
                view = np.ndarray(shape, dtype="f8", buffer=segment.buf)
                view.flags.writeable = False
                return view
            """)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def collect(segment, shape, registry):
                registry["x"] = attach(segment, shape)
            """)
        assert lint_project.rules_hit() == []

    def test_writable_status_propagates_through_wrappers(
            self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def wrapped(segment, shape):
                return attach(segment, shape)


            def collect(segment, shape, registry):
                registry["x"] = wrapped(segment, shape)
            """)
        assert lint_project.rules_hit() == ["RL010"]

    def test_plain_array_factory_ok(self, lint_project):
        lint_project.write("pkg/views.py", """\
            import numpy as np


            def make(shape):
                return np.zeros(shape, dtype="f8")
            """)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import make


            def collect(shape, registry):
                registry["x"] = make(shape)
            """)
        assert lint_project.rules_hit() == []

    def test_suppression_comment(self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def register(segment, shape, registry):
                registry["x"] = attach(segment, shape)  \
# repro-lint: disable=RL010
            """)
        result = lint_project.run()
        assert result.ok
        # The factory's own disable=RL004 is the second suppression.
        assert sorted(f.rule for f in result.suppressed) \
            == ["RL004", "RL010"]

    def test_baselined(self, lint_project):
        lint_project.write("pkg/views.py", FACTORY)
        lint_project.write("pkg/caller.py", """\
            from pkg.views import attach


            def register(segment, shape, registry):
                registry["x"] = attach(segment, shape)
            """)
        _baseline_fixture(lint_project)
        result = lint_project.run()
        assert result.ok
        assert [f.rule for f in result.baselined] == ["RL010"]


# -- determinism of the semantic core -------------------------------------

def _violation_soup(lint_project):
    """One project that exercises every project rule at once."""
    lint_project.write("pkg/keys.py", KEYS)
    lint_project.write("pkg/runtime/pool.py", PR8_REGRESSION)
    lint_project.write("pkg/order.py", INVERSION)
    lint_project.write("pkg/views.py", FACTORY)
    lint_project.write("pkg/caller.py", """\
        from pkg.views import attach


        def register(segment, shape, registry):
            registry["x"] = attach(segment, shape)
        """)
    lint_project.write("pkg/build.py", """\
        import time

        from pkg.keys import spec_key


        def build(n):
            return spec_key({"n": n, "at": time.time()})
        """)


class TestSemanticDeterminism:
    def test_two_runs_byte_identical(self, lint_project):
        from repro.lint import render_json
        _violation_soup(lint_project)
        first = render_json(lint_project.run())
        second = render_json(lint_project.run())
        assert first == second
        rules = {f["rule"] for f in json.loads(first)["findings"]}
        assert {"RL007", "RL008", "RL009", "RL010"} <= rules

    def test_shuffled_discovery_order_byte_identical(self, lint_project,
                                                     monkeypatch):
        from repro.lint import engine, render_json
        _violation_soup(lint_project)
        baseline_render = render_json(lint_project.run())
        real_walk = engine.iter_source_files
        rng = random.Random(20260807)

        def shuffled_walk(config):
            files = real_walk(config)
            rng.shuffle(files)
            return files

        monkeypatch.setattr(engine, "iter_source_files", shuffled_walk)
        for _ in range(3):
            assert render_json(lint_project.run()) == baseline_render

    def test_call_graph_stable_across_context_order(self, lint_project):
        from repro.lint.engine import iter_source_files, load_context
        from repro.lint.semantic.callgraph import CallGraph
        from repro.lint.semantic.symbols import SymbolTable
        _violation_soup(lint_project)
        config = lint_project.config()
        contexts = [load_context(path, config)
                    for path in iter_source_files(config)]
        rng = random.Random(7)
        dumps = []
        for _ in range(3):
            shuffled = list(contexts)
            rng.shuffle(shuffled)
            graph = CallGraph(SymbolTable(shuffled))
            dumps.append(json.dumps(graph.to_dict(), sort_keys=True))
        assert dumps[0] == dumps[1] == dumps[2]

    def test_taint_fixpoint_stable_across_context_order(self,
                                                        lint_project):
        from repro.lint.engine import iter_source_files, load_context
        from repro.lint.semantic.callgraph import CallGraph
        from repro.lint.semantic.symbols import SymbolTable
        from repro.lint.semantic.taint import TaintAnalysis
        _violation_soup(lint_project)
        config = lint_project.config()
        contexts = [load_context(path, config)
                    for path in iter_source_files(config)]
        rng = random.Random(11)
        snapshots = []
        for _ in range(2):
            shuffled = list(contexts)
            rng.shuffle(shuffled)
            taint = TaintAnalysis(CallGraph(SymbolTable(shuffled)),
                                  sinks=config.rl009_sinks)
            snapshots.append([
                (q, sorted(s.returns), sorted(s.param_returns), s.hits)
                for q, s in sorted(taint.functions.items())])
        assert snapshots[0] == snapshots[1]

    def test_reachability_paths_are_sorted_bfs_witnesses(self,
                                                         lint_project):
        from repro.lint.engine import iter_source_files, load_context
        from repro.lint.semantic.callgraph import CallGraph
        from repro.lint.semantic.symbols import SymbolTable
        lint_project.write("pkg/chain.py", """\
            def a():
                c()
                b()


            def b():
                c()


            def c():
                pass
            """)
        config = lint_project.config()
        contexts = [load_context(path, config)
                    for path in iter_source_files(config)]
        graph = CallGraph(SymbolTable(contexts))
        paths = graph.reachable("pkg.chain.a")
        # c is adjacent to a; the two-hop route through b never
        # overwrites the shorter witness.
        assert paths["pkg.chain.c"] == ("pkg.chain.a", "pkg.chain.c")
        assert paths["pkg.chain.b"] == ("pkg.chain.a", "pkg.chain.b")
