"""Fixtures for the repro.lint tests: throwaway lint projects.

``lint_project`` builds a minimal repo-shaped tree under ``tmp_path``
(a ``pyproject.toml`` with a ``[tool.repro-lint]`` section plus
whatever source files a test writes) and runs the real engine over it,
so every rule is exercised end-to-end: config loading, file walking,
suppression, baseline, reporting.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import load_config, run_lint

#: Mirrors the real repo's section, scoped to the fixture tree. The
#: fixture project puts "runtime" code under pkg/runtime/, hot-path
#: code at pkg/hot.py, and allows pools only in the two sanctioned
#: sites (the scheduler and the persistent warm pool), like the repo.
PYPROJECT = """\
[project]
name = "fixture"
version = "0.0.0"

[tool.repro-lint]
paths = ["pkg"]
baseline = "lint-baseline.json"
rl002-allow = ["pkg/rng_ok.py"]
rl003-paths = ["pkg/runtime/*.py"]
rl005-pool-sites = ["pkg/runtime/sched.py", "pkg/runtime/pool.py"]
rl006-hot-paths = ["pkg/hot.py"]
rl007-lock-paths = ["pkg/runtime/pool.py", "pkg/service.py"]
rl009-sinks = ["pkg.keys.spec_key", "pkg.keys.JobSpec",
               "pkg.report.render"]
"""


class LintProject:
    def __init__(self, root):
        self.root = root
        (root / "pyproject.toml").write_text(PYPROJECT, encoding="utf-8")
        (root / "pkg").mkdir()

    def write(self, relpath: str, source: str):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def run(self, **kwargs):
        return run_lint(self.config(), **kwargs)

    def config(self):
        return load_config(root=self.root)

    def rules_hit(self, **kwargs) -> list:
        """Rule IDs of *new* findings, sorted (the usual assertion)."""
        return sorted({f.rule for f in self.run(**kwargs).new})


@pytest.fixture
def lint_project(tmp_path) -> LintProject:
    return LintProject(tmp_path)
