"""HTTP round-trip tests, including the byte-identical-to-CLI contract."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.runtime.metrics import MetricsRegistry
from repro.serve import ServeConfig, create_server

TINY_ARGS = {"workload": "spec.gzip", "intervals": 12, "seed": 7,
             "scale": "tiny", "k_max": 5}


@pytest.fixture()
def server(tmp_path):
    instance = create_server(
        ServeConfig(host="127.0.0.1", port=0,
                    cache_dir=tmp_path / "cache"),
        metrics=MetricsRegistry())
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(10)


def _get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, body, raw: bytes | None = None):
    data = raw if raw is not None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        server.address + path, data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestObservability:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["started_at_unix"] > 0

    def test_stats_round_trips_as_json(self, server):
        status, body = _get(server, "/stats")
        assert status == 200
        assert body["requests"]["total"] == 0
        assert body["shm"]["live_segments"] == []

    def test_unknown_get_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404


class TestFraming:
    def test_invalid_json_is_400(self, server):
        status, body = _post(server, "/analyze", None, raw=b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_endpoint_is_404(self, server):
        status, _ = _post(server, "/nope", {})
        assert status == 404

    def test_protocol_error_is_400(self, server):
        status, body = _post(server, "/analyze", {"workload": "nope"})
        assert status == 400
        assert "unknown workload" in body["error"]


class TestByteIdentity:
    """The tentpole contract: daemon reports == one-shot CLI stdout."""

    def test_analyze_report_equals_cli_stdout(self, server, capsys):
        status, body = _post(server, "/analyze", dict(TINY_ARGS))
        assert status == 200
        rc = main(["analyze", "spec.gzip", "--intervals", "12",
                   "--seed", "7", "--scale", "tiny", "--k-max", "5",
                   "--no-cache"])
        assert rc == 0
        assert capsys.readouterr().out == body["report"] + "\n"

    def test_census_report_equals_cli_stdout(self, server, capsys,
                                             tmp_path):
        status, body = _post(
            server, "/census",
            {"workloads": ["spec.gzip", "spec.art"], "k_max": 5})
        assert status == 200
        assert body["total"] == 2
        rc = main(["census", "spec.gzip", "spec.art", "--k-max", "5",
                   "--cache-dir", str(tmp_path / "cli-cache")])
        assert rc == 0
        assert capsys.readouterr().out == body["report"] + "\n"

    def test_profile_structure_is_deterministic(self, server):
        request = {"workloads": ["spec.gzip"], "intervals": 12,
                   "seed": 7, "scale": "tiny", "k_max": 5}
        status1, first = _post(server, "/profile", dict(request))
        status2, second = _post(server, "/profile", dict(request))
        assert status1 == status2 == 200
        # Structure is stable run to run; the measured seconds are not
        # (a profile that measured nothing real would be useless).
        assert first["stages"] == second["stages"]
        assert first["stages"][0] == "job"
        assert first["measured"]["total_wall_s"] > 0

    def test_warm_response_equals_cold_response(self, server):
        status1, cold = _post(server, "/analyze", dict(TINY_ARGS))
        status2, warm = _post(server, "/analyze", dict(TINY_ARGS))
        assert status1 == status2 == 200
        assert warm["served"]["cache_hit"] is True
        cold.pop("served")
        warm.pop("served")
        assert json.dumps(cold, sort_keys=True) == \
            json.dumps(warm, sort_keys=True)


class TestCLIWiring:
    def test_serve_subcommand_parses(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-inflight", "4",
             "--max-queue", "8", "--deadline", "30",
             "--cache-max-entries", "100"])
        assert args.port == 0
        assert args.max_inflight == 4
        assert args.max_queue == 8
        assert args.deadline == 30.0
        assert args.cache_max_entries == 100

    def test_serve_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8100
        assert args.no_cache is False
        assert args.census_jobs == 1
