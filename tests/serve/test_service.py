"""Tests for the service layer: warm path, coalescing, error mapping."""

import json
import threading
import time

from repro.experiments.common import memo_size
from repro.runtime.jobs import JobSpec
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import JobOutcome
from repro.serve import service as service_module
from repro.serve.service import AnalysisService, ServeConfig

TINY = {"workload": "spec.gzip", "intervals": 12, "seed": 7,
        "scale": "tiny", "k_max": 5}


def _make(tmp_path, **overrides) -> AnalysisService:
    config = ServeConfig(cache_dir=tmp_path / "cache", **overrides)
    return AnalysisService(config, metrics=MetricsRegistry())


def _wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def _without_served(body: dict) -> dict:
    data = dict(body)
    data.pop("served", None)
    return data


class TestAnalyze:
    def test_cold_then_warm_bodies_are_identical(self, tmp_path):
        service = _make(tmp_path)
        status1, cold = service.handle("/analyze", dict(TINY))
        status2, warm = service.handle("/analyze", dict(TINY))
        assert status1 == status2 == 200
        assert cold["served"] == {"cache_hit": False, "coalesced": False}
        assert warm["served"] == {"cache_hit": True, "coalesced": False}
        # Byte-identical modulo the per-request served section.
        assert json.dumps(_without_served(cold), sort_keys=True) == \
            json.dumps(_without_served(warm), sort_keys=True)
        assert warm["key"] == JobSpec(
            workload="spec.gzip", n_intervals=12, seed=7, scale="tiny",
            k_max=5).key
        # The warm path never touched admission or the scheduler: only
        # the cold request's staged graph (collect, eipv, fit) ran.
        assert service.metrics.count("serve.warm_hit") == 1
        assert service.metrics.count("jobs.executed") == 3

    def test_render_false_omits_the_report(self, tmp_path):
        service = _make(tmp_path)
        _, with_report = service.handle("/analyze", dict(TINY))
        _, without = service.handle("/analyze",
                                    dict(TINY, render=False))
        assert "report" in with_report
        assert "report" not in without
        # Same key: the render flag shapes the envelope, not the job.
        assert with_report["key"] == without["key"]

    def test_thundering_herd_executes_once(self, tmp_path, monkeypatch):
        service = _make(tmp_path)
        real_submit_graph = service_module.submit_graph
        calls = []
        entered = threading.Event()
        release = threading.Event()

        def gated_submit_graph(graph, **kwargs):
            calls.append(graph.keys())
            entered.set()
            release.wait(30)
            return real_submit_graph(graph, **kwargs)

        monkeypatch.setattr(service_module, "submit_graph",
                            gated_submit_graph)
        n = 6
        results = [None] * n

        def worker(i):
            results[i] = service.handle("/analyze", dict(TINY))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        threads[0].start()
        assert entered.wait(10)
        for thread in threads[1:]:
            thread.start()
        assert _wait_until(lambda: service.coalescer.waiters() == n - 1)
        release.set()
        for thread in threads:
            thread.join(30)

        # One execution for N identical in-flight requests...
        assert len(calls) == 1
        assert all(status == 200 for status, _ in results)
        served = [body["served"] for _, body in results]
        assert sum(not s["coalesced"] for s in served) == 1
        assert sum(s["coalesced"] for s in served) == n - 1
        # ...and every response body is byte-identical.
        rendered = {json.dumps(_without_served(body), sort_keys=True)
                    for _, body in results}
        assert len(rendered) == 1
        assert service.metrics.count("coalesce.follower") == n - 1

    def test_job_failure_maps_to_500_with_traceback(self, tmp_path,
                                                    monkeypatch):
        service = _make(tmp_path)

        def failing_submit_graph(graph, **kwargs):
            # The analysis node is inserted last, after its stages.
            spec = graph.node(graph.keys()[-1]).spec
            return [JobOutcome(spec=spec, key=spec.key,
                               result=None, cache_hit=False,
                               wall_time=0.0, worker="test",
                               error="Traceback: boom")]

        monkeypatch.setattr(service_module, "submit_graph",
                            failing_submit_graph)
        status, body = service.handle("/analyze", dict(TINY))
        assert status == 500
        assert "boom" in body["traceback"]
        assert service.metrics.count("serve.errors") == 1

    def test_job_timeout_maps_to_504(self, tmp_path, monkeypatch):
        service = _make(tmp_path)

        def timing_out_submit_graph(graph, **kwargs):
            spec = graph.node(graph.keys()[-1]).spec
            return [JobOutcome(spec=spec, key=spec.key,
                               result=None, cache_hit=False,
                               wall_time=0.0, worker="test",
                               error="job exceeded the timeout",
                               timed_out=True)]

        monkeypatch.setattr(service_module, "submit_graph",
                            timing_out_submit_graph)
        status, _ = service.handle("/analyze", dict(TINY))
        assert status == 504


class TestAdmissionIntegration:
    def test_saturated_service_sheds_distinct_requests(self, tmp_path,
                                                       monkeypatch):
        service = _make(tmp_path, max_inflight=1, max_queue=0)
        entered = threading.Event()
        release = threading.Event()
        real_submit_graph = service_module.submit_graph

        def gated_submit_graph(graph, **kwargs):
            entered.set()
            release.wait(30)
            return real_submit_graph(graph, **kwargs)

        monkeypatch.setattr(service_module, "submit_graph",
                            gated_submit_graph)
        first = {}

        def occupant():
            first["response"] = service.handle("/analyze", dict(TINY))

        thread = threading.Thread(target=occupant)
        thread.start()
        assert entered.wait(10)
        # A *different* spec can't coalesce; with the queue full it sheds.
        status, body = service.handle("/analyze", dict(TINY, seed=8))
        assert status == 429
        assert "retry" in body["error"]
        release.set()
        thread.join(30)
        assert first["response"][0] == 200
        assert service.metrics.count("admission.shed") == 1

    def test_queued_request_deadline_maps_to_504(self, tmp_path,
                                                 monkeypatch):
        service = _make(tmp_path, max_inflight=1, max_queue=1)
        entered = threading.Event()
        release = threading.Event()
        real_submit_graph = service_module.submit_graph

        def gated_submit_graph(graph, **kwargs):
            entered.set()
            release.wait(30)
            return real_submit_graph(graph, **kwargs)

        monkeypatch.setattr(service_module, "submit_graph",
                            gated_submit_graph)
        thread = threading.Thread(
            target=lambda: service.handle("/analyze", dict(TINY)))
        thread.start()
        assert entered.wait(10)
        status, body = service.handle(
            "/analyze", dict(TINY, seed=8, deadline_s=0.05))
        assert status == 504
        assert "deadline" in body["error"]
        release.set()
        thread.join(30)


class TestProtocolErrors:
    def test_unknown_endpoint_is_404(self, tmp_path):
        status, body = _make(tmp_path).handle("/nope", {})
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_bad_request_is_400(self, tmp_path):
        status, body = _make(tmp_path).handle("/analyze",
                                              {"workload": "nope"})
        assert status == 400
        assert "unknown workload" in body["error"]


class TestHousekeeping:
    def test_cache_growth_is_bounded(self, tmp_path):
        service = _make(tmp_path, cache_max_entries=1)
        service.handle("/analyze", dict(TINY))
        service.handle("/analyze", dict(TINY, seed=8))
        assert len(service.cache.entries()) <= 1
        assert service.metrics.count("cache.pruned") >= 1

    def test_memo_growth_is_bounded(self, tmp_path):
        # The monolithic path is the one that feeds the in-process
        # collect memo; staged requests persist through the artifact
        # store instead and never touch it.
        service = _make(tmp_path, memo_max_entries=0,
                        artifact_cache=False)
        service.handle("/analyze", dict(TINY))
        assert memo_size() == 0
        assert service.metrics.count("serve.memo_cleared") >= 1

    def test_stats_exposes_the_contract(self, tmp_path):
        service = _make(tmp_path)
        service.handle("/analyze", dict(TINY))
        service.handle("/analyze", dict(TINY))
        stats = service.stats()
        assert stats["requests"]["analyze"] == 2
        assert stats["cache"]["warm_responses"] == 1
        # Three object entries: collect + eipv stage results + analysis.
        assert stats["cache"]["entries"] == 3
        assert stats["coalesce"]["leaders"] == 1
        assert stats["jobs"]["executed"] == 3
        assert stats["shm"]["live_segments"] == []
        assert stats["admission"]["running"] == 0
        assert stats["artifacts"]["enabled"] is True
        assert stats["artifacts"]["by_kind"] == {"eipv": 1, "trace": 1}
        assert stats["artifacts"]["stores"] == 2
        assert stats["artifacts"]["stages"] == {
            "collect_computed": 1, "collect_artifact_hits": 0,
            "eipv_computed": 1, "eipv_artifact_hits": 0}
        assert service.healthz()["status"] == "ok"
