"""The versioned protocol surface: /v1 paths, schema field, Deprecation."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runtime.metrics import MetricsRegistry
from repro.serve import ServeConfig, create_server
from repro.serve.protocol import normalize_endpoint

TINY_ARGS = {"workload": "spec.gzip", "intervals": 12, "seed": 7,
             "scale": "tiny", "k_max": 5}
SWEEP_ARGS = {"workloads": ["spec.gzip", "spec.art"], "seeds": [7],
              "interval_sizes": [10_000_000], "machines": ["itanium2"]}


@pytest.fixture()
def server(tmp_path):
    instance = create_server(
        ServeConfig(host="127.0.0.1", port=0,
                    cache_dir=tmp_path / "cache"),
        metrics=MetricsRegistry())
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(10)


def _get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read()), dict(resp.headers)


def _post(server, path, body):
    request = urllib.request.Request(
        server.address + path, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestNormalizeEndpoint:
    def test_strips_the_version_prefix(self):
        assert normalize_endpoint("/v1/analyze") == ("/analyze", True)
        assert normalize_endpoint("/analyze") == ("/analyze", False)
        assert normalize_endpoint("/v1") == ("/", True)

    def test_unknown_paths_pass_through(self):
        assert normalize_endpoint("/v2/analyze") == ("/v2/analyze", False)
        assert normalize_endpoint("/v1nope") == ("/v1nope", False)


class TestVersionedPaths:
    def test_versioned_post_serves_without_deprecation(self, server):
        status, body, headers = _post(server, "/v1/analyze",
                                      dict(TINY_ARGS))
        assert status == 200
        assert body["schema"] == 1
        assert "Deprecation" not in headers

    def test_unversioned_post_warns_but_works(self, server):
        versioned = _post(server, "/v1/analyze", dict(TINY_ARGS))
        legacy = _post(server, "/analyze", dict(TINY_ARGS))
        assert legacy[0] == 200
        assert legacy[2]["Deprecation"] == "true"
        assert '</v1/analyze>; rel="successor-version"' in legacy[2]["Link"]
        stable = {k: v for k, v in versioned[1].items() if k != "served"}
        compat = {k: v for k, v in legacy[1].items() if k != "served"}
        assert stable == compat

    def test_versioned_get_endpoints(self, server):
        status, body, headers = _get(server, "/v1/healthz")
        assert status == 200 and body["schema"] == 1
        assert "Deprecation" not in headers
        status, body, headers = _get(server, "/v1/stats")
        assert status == 200 and body["schema"] == 1
        assert "sweep" in body["requests"]

    def test_unversioned_get_warns(self, server):
        status, body, headers = _get(server, "/healthz")
        assert status == 200 and body["schema"] == 1
        assert headers["Deprecation"] == "true"

    def test_unknown_endpoint_is_404_under_either_prefix(self, server):
        status, body, _ = _post(server, "/v1/nope", {})
        assert status == 404
        assert "Deprecation" not in _post(server, "/nope", {})[2]

    def test_errors_carry_schema_too(self, server):
        status, body, _ = _post(server, "/v1/analyze",
                                {"workload": "nope"})
        assert status == 400
        assert body["schema"] == 1


class TestSweepEndpoint:
    def test_sweep_serves_a_merged_report(self, server):
        status, body, _ = _post(server, "/v1/sweep", dict(SWEEP_ARGS))
        assert status == 200
        assert body["endpoint"] == "sweep"
        assert body["schema"] == 1
        assert body["n_points"] == 2
        assert body["report"].startswith("sweep report")
        assert body["space_key"] == body["key"]

    def test_sweep_responses_coalesce_and_resume(self, server):
        first = _post(server, "/v1/sweep", dict(SWEEP_ARGS))
        second = _post(server, "/v1/sweep", dict(SWEEP_ARGS))
        assert first[0] == second[0] == 200
        # The second pass replays persisted shard partials; the body is a
        # pure function of the request, so the bytes match exactly.
        assert first[1] == second[1]

    def test_render_false_strips_the_report(self, server):
        status, body, _ = _post(server, "/v1/sweep",
                                dict(SWEEP_ARGS, render=False))
        assert status == 200
        assert "report" not in body
        assert body["n_points"] == 2

    def test_invalid_sweep_request_is_400(self, server):
        status, body, _ = _post(server, "/v1/sweep",
                                dict(SWEEP_ARGS, folds=40))
        assert status == 400
        assert "folds" in body["error"]
        status, body, _ = _post(server, "/v1/sweep",
                                dict(SWEEP_ARGS, machines=["cray-1"]))
        assert status == 400
