"""Tests for the admission controller (bounded in-flight, shed, deadlines)."""

import threading
import time

import pytest

from repro.runtime.metrics import MetricsRegistry
from repro.serve.admission import (AdmissionController, DeadlineExceeded,
                                   ShedLoad)


def _wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def _occupy(controller):
    """Hold one admission slot on a background thread until released."""
    holding = threading.Event()
    release = threading.Event()

    def body():
        with controller.admit():
            holding.set()
            release.wait(10)

    thread = threading.Thread(target=body)
    thread.start()
    assert holding.wait(5)
    return release, thread


class TestGate:
    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=2, max_queue=0,
                                         metrics=MetricsRegistry())
        with controller.admit():
            with controller.admit():
                assert controller.depth()["running"] == 2
        assert controller.depth()["running"] == 0

    def test_sheds_immediately_beyond_queue(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(max_inflight=1, max_queue=0,
                                         metrics=metrics)
        release, thread = _occupy(controller)
        start = time.monotonic()
        with pytest.raises(ShedLoad):
            with controller.admit():
                pass
        # Shedding is a refusal, not a wait.
        assert time.monotonic() - start < 1.0
        assert metrics.count("admission.shed") == 1
        release.set()
        thread.join(10)

    def test_queued_request_runs_when_slot_frees(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(max_inflight=1, max_queue=1,
                                         metrics=metrics)
        release, thread = _occupy(controller)
        ran = threading.Event()

        def queued():
            with controller.admit():
                ran.set()

        waiter = threading.Thread(target=queued)
        waiter.start()
        assert _wait_until(lambda: controller.depth()["queued"] == 1)
        assert not ran.is_set()
        release.set()
        waiter.join(10)
        thread.join(10)
        assert ran.is_set()
        assert metrics.count("admission.queued") == 1
        assert metrics.count("admission.admitted") == 2
        assert controller.depth() == {"running": 0, "queued": 0,
                                      "max_inflight": 1, "max_queue": 1}

    def test_deadline_expires_in_queue(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(max_inflight=1, max_queue=1,
                                         metrics=metrics)
        release, thread = _occupy(controller)
        with pytest.raises(DeadlineExceeded):
            with controller.admit(deadline=time.monotonic() + 0.05):
                pass
        assert metrics.count("admission.deadline_expired") == 1
        # The expired waiter left the queue; capacity is intact.
        assert controller.depth()["queued"] == 0
        release.set()
        thread.join(10)
        with controller.admit():
            pass

    def test_failure_inside_the_gate_releases_the_slot(self):
        controller = AdmissionController(max_inflight=1, max_queue=0,
                                         metrics=MetricsRegistry())
        with pytest.raises(RuntimeError):
            with controller.admit():
                raise RuntimeError("body failed")
        assert controller.depth()["running"] == 0
        with controller.admit():
            pass
