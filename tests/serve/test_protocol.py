"""Tests for request parsing and content-hashed request identities."""

import pytest

from repro.runtime.jobs import JobSpec
from repro.serve.protocol import (AnalyzeRequest, CensusRequest,
                                  ProfileRequest, ProtocolError,
                                  parse_request)


class TestAnalyzeRequest:
    def test_defaults_match_cli_normalization(self):
        request = AnalyzeRequest.from_body({"workload": "odbc"})
        assert request.n_intervals == 60
        assert request.seed == 11
        assert request.k_max == 50
        assert request.scale == "default"
        assert request.machine == "itanium2"

    def test_dss_interval_default_matches_cli(self):
        request = AnalyzeRequest.from_body({"workload": "odbh.q1"})
        assert request.n_intervals == 132

    def test_key_is_the_spec_key(self):
        request = AnalyzeRequest.from_body(
            {"workload": "spec.gzip", "intervals": 12, "seed": 7,
             "scale": "tiny", "k_max": 5})
        spec = JobSpec(workload="spec.gzip", n_intervals=12, seed=7,
                       scale="tiny", k_max=5)
        assert request.key == spec.key
        assert request.to_spec() == spec

    def test_render_and_deadline_do_not_change_key(self):
        base = AnalyzeRequest.from_body({"workload": "odbc"})
        other = AnalyzeRequest.from_body(
            {"workload": "odbc", "render": False, "deadline_s": 5})
        assert base.key == other.key

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            AnalyzeRequest.from_body({"workload": "nope"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            AnalyzeRequest.from_body({"workload": "odbc", "n_intervals": 9})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError, match="must be an integer"):
            AnalyzeRequest.from_body({"workload": "odbc", "seed": True})

    def test_bad_scale_and_machine_rejected(self):
        with pytest.raises(ProtocolError, match="'scale'"):
            AnalyzeRequest.from_body({"workload": "odbc", "scale": "huge"})
        with pytest.raises(ProtocolError, match="'machine'"):
            AnalyzeRequest.from_body({"workload": "odbc",
                                      "machine": "m68k"})

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ProtocolError, match="deadline_s"):
            AnalyzeRequest.from_body({"workload": "odbc", "deadline_s": 0})

    def test_body_must_be_object(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            AnalyzeRequest.from_body(["odbc"])


class TestCensusRequest:
    def test_empty_means_full_census(self):
        request = CensusRequest.from_body({})
        assert request.workloads == ()

    def test_key_excludes_render_and_deadline(self):
        base = CensusRequest.from_body({"workloads": ["odbc"]})
        other = CensusRequest.from_body(
            {"workloads": ["odbc"], "render": False, "deadline_s": 9})
        assert base.key == other.key

    def test_key_depends_on_workloads_and_seed(self):
        a = CensusRequest.from_body({"workloads": ["odbc"]})
        b = CensusRequest.from_body({"workloads": ["sjas"]})
        c = CensusRequest.from_body({"workloads": ["odbc"], "seed": 12})
        assert len({a.key, b.key, c.key}) == 3

    def test_workloads_must_be_a_list(self):
        with pytest.raises(ProtocolError, match="'workloads'"):
            CensusRequest.from_body({"workloads": "odbc"})


class TestProfileRequest:
    def test_requires_workloads(self):
        with pytest.raises(ProtocolError, match="'workloads'"):
            ProfileRequest.from_body({})

    def test_key_excludes_deadline_only(self):
        base = ProfileRequest.from_body({"workloads": ["odbc"]})
        same = ProfileRequest.from_body(
            {"workloads": ["odbc"], "deadline_s": 3})
        other = ProfileRequest.from_body({"workloads": ["odbc"], "top": 9})
        assert base.key == same.key
        assert base.key != other.key


class TestRouting:
    def test_known_endpoints_parse(self):
        request = parse_request("/analyze", {"workload": "odbc"})
        assert isinstance(request, AnalyzeRequest)
        assert isinstance(parse_request("/census", {}), CensusRequest)
        assert isinstance(parse_request("/profile",
                                        {"workloads": ["odbc"]}),
                          ProfileRequest)

    def test_unknown_endpoint_is_404(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("/nope", {})
        assert excinfo.value.status == 404

    def test_parse_errors_are_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("/analyze", {})
        assert excinfo.value.status == 400
