"""Tests for the branch predictor models."""

import pytest

from repro.uarch.branch import (
    GSharePredictor,
    TwoBitPredictor,
    measure_misprediction_rate,
)


class TestTwoBit:
    def test_initial_prediction_not_taken(self):
        assert TwoBitPredictor().predict(0x400) is False

    def test_learns_always_taken(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_two_mistakes_needed_to_flip(self):
        predictor = TwoBitPredictor()
        for _ in range(8):
            predictor.update(0x400, True)   # saturate taken
        predictor.update(0x400, False)
        assert predictor.predict(0x400) is True   # hysteresis
        predictor.update(0x400, False)
        assert predictor.predict(0x400) is False

    def test_loop_branch_high_accuracy(self):
        predictor = TwoBitPredictor()
        # 100 iterations of a 10-iteration loop: taken 9x, not-taken 1x.
        for _ in range(100):
            for i in range(10):
                predictor.update(0x400, i != 9)
        assert predictor.stats.misprediction_rate < 0.15

    def test_counters_saturate(self):
        predictor = TwoBitPredictor(table_size=2)
        for _ in range(100):
            predictor.update(0, True)
        for _ in range(100):
            predictor.update(0, False)
        # No over/underflow: predictions remain sane.
        assert predictor.predict(0) is False

    def test_aliasing_shares_entries(self):
        predictor = TwoBitPredictor(table_size=4)
        for _ in range(4):
            predictor.update(0, True)
        # pc 4 aliases to the same entry (4 % 4 == 0).
        assert predictor.predict(4) is True

    @pytest.mark.parametrize("size", [0, 3, 100])
    def test_invalid_table_size(self, size):
        with pytest.raises(ValueError):
            TwoBitPredictor(table_size=size)


class TestGShare:
    def test_learns_alternating_pattern(self):
        """Gshare captures history-correlated branches a bimodal cannot."""
        gshare = GSharePredictor(table_size=1024, history_bits=4)
        bimodal = TwoBitPredictor(table_size=1024)
        pattern = [True, False]
        for _ in range(400):
            for taken in pattern:
                gshare.update(0x400, taken)
                bimodal.update(0x400, taken)
        assert (gshare.stats.misprediction_rate
                < bimodal.stats.misprediction_rate)
        assert gshare.stats.misprediction_rate < 0.1

    def test_history_changes_index(self):
        predictor = GSharePredictor(table_size=16, history_bits=4)
        predictor.update(0, True)
        # After one taken branch the history is 1; same pc maps elsewhere.
        assert predictor._index(0) != 0

    @pytest.mark.parametrize("size,history", [(0, 4), (6, 4), (16, 0)])
    def test_invalid_parameters(self, size, history):
        with pytest.raises(ValueError):
            GSharePredictor(table_size=size, history_bits=history)


def test_measure_misprediction_rate():
    trace = [(0x400, True)] * 50 + [(0x404, False)] * 50
    rate = measure_misprediction_rate(TwoBitPredictor(), trace)
    assert 0.0 <= rate < 0.2
