"""Tests for CPI-breakdown accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uarch.stalls import COMPONENTS, CPIBreakdown


def breakdown(instructions=100, work=50.0, fe=10.0, exe=30.0, other=10.0):
    return CPIBreakdown(instructions=instructions, work=work, fe=fe,
                        exe=exe, other=other)


class TestBasics:
    def test_cycles_and_cpi(self):
        b = breakdown()
        assert b.cycles == 100.0
        assert b.cpi == pytest.approx(1.0)

    def test_component_cpi(self):
        b = breakdown()
        assert b.component_cpi("exe") == pytest.approx(0.3)

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            breakdown().component_cpi("l3")

    def test_fractions_sum_to_one(self):
        fractions = breakdown().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == set(COMPONENTS)

    def test_empty_breakdown(self):
        zero = CPIBreakdown.zero()
        assert zero.cpi == 0.0
        assert all(v == 0.0 for v in zero.fractions().values())

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CPIBreakdown(10, -1.0, 0, 0, 0)
        with pytest.raises(ValueError):
            CPIBreakdown(-1, 1.0, 0, 0, 0)

    def test_addition(self):
        total = breakdown() + breakdown(instructions=200, work=100.0)
        assert total.instructions == 300
        assert total.work == 150.0
        assert total.fe == 20.0

    def test_accumulate(self):
        parts = [breakdown() for _ in range(5)]
        total = CPIBreakdown.accumulate(parts)
        assert total.instructions == 500
        assert total.cycles == pytest.approx(500.0)


component_values = st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False)


@given(
    a=st.tuples(st.integers(0, 10**7), component_values, component_values,
                component_values, component_values),
    b=st.tuples(st.integers(0, 10**7), component_values, component_values,
                component_values, component_values),
)
def test_addition_properties(a, b):
    """Addition is commutative, preserves totals, and keeps CPI bounded."""
    x = CPIBreakdown(*a)
    y = CPIBreakdown(*b)
    s1 = x + y
    s2 = y + x
    assert s1.instructions == s2.instructions
    assert s1.cycles == pytest.approx(s2.cycles)
    assert s1.cycles == pytest.approx(x.cycles + y.cycles)
    if s1.instructions > 0:
        low = min(x.cpi if x.instructions else s1.cpi,
                  y.cpi if y.instructions else s1.cpi)
        high = max(x.cpi if x.instructions else s1.cpi,
                   y.cpi if y.instructions else s1.cpi)
        assert low - 1e-6 <= s1.cpi <= high + 1e-6
