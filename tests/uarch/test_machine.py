"""Tests for machine configurations."""

import pytest

from repro.uarch.machine import (
    MACHINES,
    CacheConfig,
    MachineConfig,
    get_machine,
    itanium2,
    pentium4,
    xeon,
)


class TestPresets:
    def test_all_presets_construct(self):
        for name in MACHINES:
            machine = get_machine(name)
            assert machine.name == name

    def test_itanium2_matches_paper_setup(self):
        machine = itanium2()
        assert machine.frequency_mhz == 900
        assert machine.processors == 4
        assert machine.cache_size("L3") == 3 * 1024 * 1024
        assert machine.cache_size("L2") == 256 * 1024
        # Paper: 64 KB split L1 (32 KB I + 32 KB D).
        assert machine.cache_size("L1I") + machine.cache_size("L1D") \
            == 64 * 1024

    def test_pentium4_has_no_l3(self):
        machine = pentium4()
        assert machine.l3 is None
        assert machine.cache_size("L3") == 0

    def test_xeon_l3_smaller_than_itanium(self):
        assert xeon().cache_size("L3") < itanium2().cache_size("L3")

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError, match="itanium2"):
            get_machine("cray")

    def test_unknown_cache_level_raises(self):
        with pytest.raises(KeyError):
            itanium2().cache_size("L4")

    def test_base_cpi_floor(self):
        assert itanium2().base_cpi_floor == pytest.approx(1 / 6)


class TestValidation:
    def test_missing_latency_rejected(self):
        with pytest.raises(ValueError, match="missing latencies"):
            MachineConfig(
                name="broken", frequency_mhz=1000, processors=1,
                issue_width=2, mispredict_penalty=10,
                l1i=CacheConfig(1024, 64, 2),
                l1d=CacheConfig(1024, 64, 2),
                l2=CacheConfig(4096, 64, 4),
                l3=None,
                latencies={"L1": 1, "L2": 5})

    def test_l3_latency_required_with_l3(self):
        with pytest.raises(ValueError):
            MachineConfig(
                name="broken", frequency_mhz=1000, processors=1,
                issue_width=2, mispredict_penalty=10,
                l1i=CacheConfig(1024, 64, 2),
                l1d=CacheConfig(1024, 64, 2),
                l2=CacheConfig(4096, 64, 4),
                l3=CacheConfig(65536, 64, 8),
                latencies={"L1": 1, "L2": 5, "memory": 100})

    def test_cache_config_builds_cache(self):
        cache = CacheConfig(1024, 64, 4).build("L1")
        assert cache.name == "L1"
        assert cache.size_bytes == 1024
