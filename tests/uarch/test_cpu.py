"""Tests for the analytical CPU model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cpu import AnalyticalCPU, ExecutionProfile, estimate_miss_rate
from repro.uarch.machine import itanium2, pentium4

KB = 1024
MB = 1024 * KB


class TestMissRateModel:
    def test_zero_footprint(self):
        assert estimate_miss_rate(0, 1024, 0.5) == 0.0

    def test_footprint_within_cache_no_misses(self):
        assert estimate_miss_rate(1024, 4096, 0.0) == 0.0

    def test_perfect_locality_no_misses(self):
        assert estimate_miss_rate(1 << 30, 1024, 1.0) == 0.0

    def test_zero_cache_random_access(self):
        assert estimate_miss_rate(1 << 20, 0, 0.0) == 1.0

    def test_known_value(self):
        # Half the footprint covered, half the accesses uniform.
        assert estimate_miss_rate(2048, 1024, 0.5) == pytest.approx(0.25)

    @settings(max_examples=100, deadline=None)
    @given(
        footprint=st.floats(1.0, 1e12),
        cache=st.floats(1.0, 1e9),
        bigger=st.floats(1.0, 100.0),
        locality=st.floats(0.0, 1.0),
    )
    def test_monotonicity(self, footprint, cache, bigger, locality):
        """Larger caches and better locality never increase the miss rate;
        larger footprints never decrease it."""
        base = estimate_miss_rate(footprint, cache, locality)
        assert 0.0 <= base <= 1.0
        assert estimate_miss_rate(footprint, cache * bigger, locality) \
            <= base + 1e-12
        assert estimate_miss_rate(footprint * bigger, cache, locality) \
            >= base - 1e-12
        assert estimate_miss_rate(footprint, cache,
                                  min(1.0, locality + 0.1)) <= base + 1e-12


class TestServedFractions:
    def test_fractions_sum_to_one(self):
        cpu = AnalyticalCPU(itanium2())
        served = cpu.served_fractions(100 * MB, 0.8)
        total = served.l1 + served.l2 + served.l3 + served.memory
        assert total == pytest.approx(1.0)

    def test_tiny_footprint_all_l1(self):
        cpu = AnalyticalCPU(itanium2())
        served = cpu.served_fractions(4 * KB, 0.5)
        assert served.l1 == pytest.approx(1.0)

    def test_no_l3_machine_routes_to_memory(self):
        cpu = AnalyticalCPU(pentium4())
        served = cpu.served_fractions(100 * MB, 0.5)
        assert served.l3 == 0.0
        assert served.memory > 0

    def test_warmth_validation(self):
        cpu = AnalyticalCPU(itanium2())
        with pytest.raises(ValueError):
            cpu.served_fractions(1 * MB, 0.5, warmth=0.0)
        with pytest.raises(ValueError):
            cpu.served_fractions(1 * MB, 0.5, warmth=1.5)


class TestExecute:
    def test_breakdown_consistent_with_component_cpis(self):
        cpu = AnalyticalCPU(itanium2())
        profile = ExecutionProfile()
        work, fe, exe, other = cpu.component_cpis(profile)
        result = cpu.execute(profile, 1000)
        assert result.work == pytest.approx(work * 1000)
        assert result.fe == pytest.approx(fe * 1000)
        assert result.exe == pytest.approx(exe * 1000)
        assert result.other == pytest.approx(other * 1000)

    def test_zero_instructions(self):
        cpu = AnalyticalCPU(itanium2())
        assert cpu.execute(ExecutionProfile(), 0).cycles == 0.0

    def test_negative_instructions_rejected(self):
        cpu = AnalyticalCPU(itanium2())
        with pytest.raises(ValueError):
            cpu.execute(ExecutionProfile(), -1)

    def test_jitter_requires_rng(self):
        cpu = AnalyticalCPU(itanium2())
        with pytest.raises(ValueError):
            cpu.execute(ExecutionProfile(), 100, jitter=0.1)

    def test_jitter_perturbs_stalls_not_work(self):
        cpu = AnalyticalCPU(itanium2())
        profile = ExecutionProfile(data_footprint=100 * MB,
                                   data_locality=0.8)
        rng = np.random.default_rng(0)
        noisy = cpu.execute(profile, 1000, rng=rng, jitter=0.5)
        clean = cpu.execute(profile, 1000)
        assert noisy.work == pytest.approx(clean.work)
        assert noisy.exe != pytest.approx(clean.exe)

    def test_cold_caches_increase_cpi(self):
        cpu = AnalyticalCPU(itanium2())
        profile = ExecutionProfile(data_footprint=10 * MB,
                                   data_locality=0.8)
        warm = cpu.execute(profile, 1000, warmth=1.0)
        cold = cpu.execute(profile, 1000, warmth=0.3)
        assert cold.cpi > warm.cpi

    def test_memory_bound_profile_is_exe_dominated(self):
        cpu = AnalyticalCPU(itanium2())
        profile = ExecutionProfile(
            data_footprint=1 << 30, data_locality=0.9,
            memory_fraction=0.4, memory_level_parallelism=1.5)
        fractions = cpu.execute(profile, 1000).fractions()
        assert fractions["exe"] == max(fractions.values())

    def test_work_cpi_bounded_by_issue_width(self):
        cpu = AnalyticalCPU(itanium2())
        profile = ExecutionProfile(base_cpi=0.01)
        result = cpu.execute(profile, 600)
        assert result.work / 600 == pytest.approx(cpu.machine.base_cpi_floor)

    def test_steady_state_cpi_positive(self):
        cpu = AnalyticalCPU(itanium2())
        assert cpu.steady_state_cpi(ExecutionProfile()) > 0


class TestProfileValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_cpi": 0.0},
        {"memory_fraction": 1.5},
        {"branch_fraction": -0.1},
        {"mispredict_rate": 2.0},
        {"memory_level_parallelism": 0.5},
        {"dependency_stall_cpi": -1.0},
    ])
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionProfile(**kwargs)

    def test_scaled_returns_modified_copy(self):
        profile = ExecutionProfile()
        scaled = profile.scaled(base_cpi=2.0)
        assert scaled.base_cpi == 2.0
        assert profile.base_cpi != 2.0


def test_analytical_model_tracks_cache_simulator():
    """The analytical served fractions agree in rank order with a real
    trace through the cache simulator, for a random working set."""
    machine = itanium2()
    cpu = AnalyticalCPU(machine)
    footprint = 8 * MB
    rng = np.random.default_rng(7)
    hierarchy = machine.build_hierarchy()
    from repro.uarch.cache import AccessType
    served = {"L1": 0, "L2": 0, "L3": 0, "memory": 0}
    # Uniform random accesses over the footprint (locality 0).
    addresses = rng.integers(0, footprint, size=40_000)
    for address in addresses:
        served[hierarchy.access(int(address), AccessType.LOAD).level] += 1
    measured_memory = served["memory"] / len(addresses)
    predicted = cpu.served_fractions(footprint, 0.0)
    # Both should agree that a large majority of accesses go past L3.
    assert measured_memory > 0.5
    assert predicted.memory > 0.5
    assert abs(measured_memory - predicted.memory) < 0.35
