"""Unit and property tests for the set-associative cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache import AccessType, Cache


class TestGeometry:
    def test_sets_computed_from_geometry(self):
        cache = Cache(size_bytes=1024, line_bytes=64, associativity=4)
        assert cache.num_sets == 4

    def test_direct_mapped(self):
        cache = Cache(size_bytes=512, line_bytes=64, associativity=1)
        assert cache.num_sets == 8

    def test_fully_associative(self):
        cache = Cache(size_bytes=512, line_bytes=64, associativity=8)
        assert cache.num_sets == 1

    @pytest.mark.parametrize("size,line,ways", [
        (0, 64, 4), (1024, 0, 4), (1024, 64, 0),
        (1024, 48, 4),      # line not power of two
        (1000, 64, 4),      # size not divisible
    ])
    def test_invalid_geometry_rejected(self, size, line, ways):
        with pytest.raises(ValueError):
            Cache(size_bytes=size, line_bytes=line, associativity=ways)


class TestAccessBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = Cache(1024, 64, 4)
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_different_bytes_hit(self):
        cache = Cache(1024, 64, 4)
        cache.access(0x100)
        assert cache.access(0x13F) is True   # same 64B line
        assert cache.access(0x140) is False  # next line

    def test_lru_eviction_order(self):
        # 2-way, single set: third distinct line evicts the least recent.
        cache = Cache(128, 64, 2)
        assert cache.num_sets == 1
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)          # 0 becomes MRU
        cache.access(2 * 64)          # evicts 1
        assert cache.probe(0 * 64) is True
        assert cache.probe(1 * 64) is False
        assert cache.probe(2 * 64) is True

    def test_probe_does_not_mutate(self):
        cache = Cache(128, 64, 2)
        cache.access(0)
        hits_before = cache.stats.hits
        cache.probe(0)
        cache.probe(4096)
        assert cache.stats.hits == hits_before
        assert cache.resident_lines() == 1

    def test_flush_invalidates_but_keeps_stats(self):
        cache = Cache(1024, 64, 4)
        cache.access(0)
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0
        assert cache.stats.hits == 1
        assert cache.access(0) is False

    def test_reset_stats(self):
        cache = Cache(1024, 64, 4)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.probe(0) is True  # contents preserved

    def test_per_type_stats(self):
        cache = Cache(1024, 64, 4)
        cache.access(0, AccessType.INSTRUCTION)
        cache.access(0, AccessType.INSTRUCTION)
        cache.access(4096, AccessType.LOAD)
        by_type = cache.stats.by_type
        assert by_type["instruction"] == [1, 1]   # [hits, misses]
        assert by_type["load"] == [0, 1]

    def test_miss_rate_zero_when_untouched(self):
        assert Cache(1024, 64, 4).stats.miss_rate == 0.0

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        cache = Cache(4096, 64, 4)
        lines = [i * 64 for i in range(4096 // 64)]
        for address in lines:
            cache.access(address)
        cache.reset_stats()
        for address in lines:
            assert cache.access(address) is True
        assert cache.stats.miss_rate == 0.0

    def test_streaming_beyond_capacity_always_misses(self):
        cache = Cache(1024, 64, 2)
        for address in range(0, 1 << 20, 64):
            assert cache.access(address) is False


class _ReferenceLRU:
    """Brute-force LRU model used as the hypothesis oracle."""

    def __init__(self, num_sets, ways, line):
        self.num_sets = num_sets
        self.ways = ways
        self.line = line
        self.sets = [[] for _ in range(num_sets)]

    def access(self, address):
        line = address // self.line
        index = line % self.num_sets
        tag = line // self.num_sets
        entry = self.sets[index]
        hit = tag in entry
        if hit:
            entry.remove(tag)
        elif len(entry) == self.ways:
            entry.pop(0)
        if not hit:
            pass
        entry.append(tag)
        return hit


@settings(max_examples=60, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=8191),
                       min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4]),
    sets_log=st.integers(min_value=0, max_value=3),
)
def test_matches_reference_lru(addresses, ways, sets_log):
    """Trace-for-trace equivalence with an independent LRU model."""
    line = 64
    num_sets = 1 << sets_log
    cache = Cache(line * ways * num_sets, line, ways)
    reference = _ReferenceLRU(num_sets, ways, line)
    for address in addresses:
        assert cache.access(address) == reference.access(address)


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=200))
def test_stats_invariants(addresses):
    cache = Cache(2048, 64, 4)
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.hits + stats.misses == len(addresses)
    assert 0.0 <= stats.miss_rate <= 1.0
    assert cache.resident_lines() <= cache.num_sets * cache.associativity
    # Every resident line was installed by a miss.
    assert cache.resident_lines() <= stats.misses
