"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.uarch.cache import AccessType, Cache
from repro.uarch.hierarchy import CacheHierarchy
from repro.uarch.machine import itanium2


def small_hierarchy(with_l3=True):
    l3 = Cache(4096, 64, 4, "L3") if with_l3 else None
    latencies = {"L1": 1, "L2": 6, "memory": 200}
    if with_l3:
        latencies["L3"] = 14
    return CacheHierarchy(
        l1i=Cache(256, 64, 2, "L1I"),
        l1d=Cache(256, 64, 2, "L1D"),
        l2=Cache(1024, 64, 4, "L2"),
        l3=l3,
        latencies=latencies,
    )


class TestPropagation:
    def test_cold_access_served_by_memory(self):
        hierarchy = small_hierarchy()
        result = hierarchy.access(0x1000, AccessType.LOAD)
        assert result.level == "memory"
        assert result.latency == 200

    def test_second_access_served_by_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x1000, AccessType.LOAD)
        result = hierarchy.access(0x1000, AccessType.LOAD)
        assert result.level == "L1"
        assert result.latency == 1

    def test_l1_eviction_falls_back_to_l2(self):
        hierarchy = small_hierarchy()
        # L1D holds 4 lines (256B/64B); stream 8 lines then revisit line 0:
        # evicted from L1 but still in the larger L2.
        for i in range(8):
            hierarchy.access(i * 64, AccessType.LOAD)
        result = hierarchy.access(0, AccessType.LOAD)
        assert result.level == "L2"

    def test_instruction_accesses_use_l1i(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x2000, AccessType.INSTRUCTION)
        assert hierarchy.l1i.stats.accesses == 1
        assert hierarchy.l1d.stats.accesses == 0

    def test_l1_hit_does_not_touch_l2(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, AccessType.LOAD)
        l2_accesses = hierarchy.l2.stats.accesses
        hierarchy.access(0, AccessType.LOAD)
        assert hierarchy.l2.stats.accesses == l2_accesses

    def test_no_l3_hierarchy(self):
        hierarchy = small_hierarchy(with_l3=False)
        result = hierarchy.access(0x1000, AccessType.LOAD)
        assert result.level == "memory"
        assert "L3" not in hierarchy.miss_rates()

    def test_flush_clears_all_levels(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, AccessType.LOAD)
        hierarchy.flush()
        assert hierarchy.l1d.resident_lines() == 0
        assert hierarchy.l2.resident_lines() == 0
        assert hierarchy.l3.resident_lines() == 0

    def test_stats_fractions_sum_to_one(self):
        hierarchy = small_hierarchy()
        for i in range(50):
            hierarchy.access(i * 64, AccessType.LOAD)
        for i in range(25):
            hierarchy.access(i * 64, AccessType.LOAD)
        total = sum(hierarchy.stats.fraction(level)
                    for level in ("L1", "L2", "L3", "memory"))
        assert total == pytest.approx(1.0)


class TestValidation:
    def test_missing_latency_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                l1i=Cache(256, 64, 2), l1d=Cache(256, 64, 2),
                l2=Cache(1024, 64, 4), l3=None,
                latencies={"L1": 1})

    def test_l3_latency_required_when_l3_present(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                l1i=Cache(256, 64, 2), l1d=Cache(256, 64, 2),
                l2=Cache(1024, 64, 4), l3=Cache(4096, 64, 4),
                latencies={"L1": 1, "L2": 6, "memory": 200})


def test_machine_builds_working_hierarchy():
    hierarchy = itanium2().build_hierarchy()
    result = hierarchy.access(0x40000000, AccessType.LOAD)
    assert result.level == "memory"
    assert hierarchy.access(0x40000000, AccessType.LOAD).level == "L1"
