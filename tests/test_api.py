"""The stable ``repro.api`` facade and the AnalysisConfig migration."""

import numpy as np
import pytest

from repro import api
from repro.core.config import AnalysisConfig, resolve_config
from repro.core.cross_validation import relative_error_curve
from repro.core.predictability import analyze_predictability
from repro.experiments import table2_quadrants

CONFIG = AnalysisConfig(k_max=5, seed=7)


@pytest.fixture(scope="module")
def dataset():
    _, ds = api.collect("spec.gzip", n_intervals=12, seed=7, scale="tiny")
    return ds


class TestAnalysisConfig:
    def test_defaults_match_the_paper(self):
        config = AnalysisConfig()
        assert (config.k_max, config.folds) == (50, 10)
        assert (config.seed, config.min_leaf) == (0, 1)

    def test_frozen_and_hashable(self):
        config = AnalysisConfig()
        with pytest.raises(AttributeError):
            config.k_max = 10
        assert AnalysisConfig() in {config}

    def test_replace_returns_modified_copy(self):
        config = AnalysisConfig()
        assert config.replace(seed=3) == AnalysisConfig(seed=3)
        assert config.seed == 0

    @pytest.mark.parametrize("bad", [dict(k_max=0), dict(folds=1),
                                     dict(min_leaf=0)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            AnalysisConfig(**bad)


class TestLegacyKwargs:
    """Loose k_max/folds/seed kwargs still work, warn, and agree."""

    def test_resolve_config_merges_and_warns(self):
        with pytest.warns(DeprecationWarning, match="k_max, seed"):
            merged = resolve_config(None, k_max=8, seed=3, caller="f")
        assert merged == AnalysisConfig(k_max=8, seed=3)

    def test_resolve_config_silent_without_legacy_kwargs(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_config(CONFIG) is CONFIG
            assert resolve_config(None) == AnalysisConfig()

    def test_curve_identical_under_both_spellings(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((30, 4))
        y = rng.random(30)
        with pytest.warns(DeprecationWarning):
            legacy = relative_error_curve(matrix, y, k_max=6, folds=5,
                                          seed=3)
        modern = relative_error_curve(
            matrix, y, config=AnalysisConfig(k_max=6, folds=5, seed=3))
        assert np.array_equal(legacy.re, modern.re)
        assert legacy.k_opt == modern.k_opt

    def test_analysis_identical_under_both_spellings(self, dataset):
        with pytest.warns(DeprecationWarning):
            legacy = analyze_predictability(dataset, k_max=5, seed=7)
        modern = analyze_predictability(dataset, config=CONFIG)
        assert legacy.summary() == modern.summary()
        assert np.array_equal(legacy.curve.re, modern.curve.re)


class TestFacade:
    def test_collect_names_the_dataset(self, dataset):
        assert dataset.workload_name == "spec.gzip"
        assert dataset.n_intervals == 12

    def test_analyze_matches_collect_plus_analyze_dataset(self, dataset):
        one_call = api.analyze("spec.gzip", config=CONFIG, n_intervals=12,
                               scale="tiny")
        two_calls = api.analyze_dataset(dataset, config=CONFIG)
        assert one_call.summary() == two_calls.summary()
        assert np.array_equal(one_call.curve.re, two_calls.curve.re)

    def test_analyze_is_deterministic(self):
        first = api.analyze("spec.gzip", config=CONFIG, n_intervals=12,
                            scale="tiny")
        second = api.analyze("spec.gzip", config=CONFIG, n_intervals=12,
                             scale="tiny")
        assert first.summary() == second.summary()

    def test_census_matches_direct_experiment_run(self):
        names = ["spec.gzip", "spec.art"]
        via_api = api.census(names, config=CONFIG, n_intervals=12)
        direct = table2_quadrants.run(workloads=names, seed=CONFIG.seed,
                                      k_max=CONFIG.k_max, n_intervals=12)
        assert table2_quadrants.render(via_api) == \
            table2_quadrants.render(direct)

    def test_profile_reports_every_stage(self):
        result = api.profile("spec.gzip", config=CONFIG, n_intervals=12,
                             scale="tiny")
        assert result.workloads == ("spec.gzip",)
        assert result.jobs == 1
        assert "job/analyze/cv/cv.fold" in result.stage_names()
        assert "job/pipeline.collect" in result.stage_names()
        report = result.report(top=3)
        assert "per-stage breakdown" in report
        assert "top 3 slowest spans" in report

    def test_sweep_defaults_to_the_generated_fleet_space(self, tmp_path):
        space = api.SweepSpace(workloads=("spec.gzip", "spec.art"),
                               interval_instructions=(10_000_000,),
                               seeds=(7,))
        outcome = api.sweep(space, sweep_dir=tmp_path / "sweep",
                            shards=2)
        assert isinstance(outcome, api.SweepOutcome)
        assert outcome.n_points == 2
        assert outcome.report.startswith("sweep report")
        # Omitting the space means the full generated fleet space.
        from repro.sweep import default_space
        assert default_space().full_size == 1350

    def test_facade_exports_are_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
