"""Tests for the B-tree substrate and its descent modulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cpu import ExecutionProfile
from repro.workloads.btree import (
    BTree,
    BTreeDescentModulator,
    path_overlap,
)


class TestBTreeStructure:
    def test_single_leaf(self):
        tree = BTree([5], fanout=4)
        assert tree.height == 1
        assert tree.node_count() == 1

    def test_height_grows_logarithmically(self):
        small = BTree(range(10), fanout=4)
        large = BTree(range(1000), fanout=4)
        assert large.height > small.height
        # height bounded by ceil(log_fanout(n)) + 1
        assert large.height <= 6

    def test_search_finds_every_key(self):
        keys = list(range(0, 500, 7))
        tree = BTree(keys, fanout=8)
        for key in keys:
            value, path = tree.search(key)
            assert value == key
            assert len(path) == tree.height

    def test_search_absent_key(self):
        tree = BTree(range(0, 100, 2), fanout=8)
        value, path = tree.search(51)
        assert value is None
        assert len(path) == tree.height

    def test_duplicate_keys_deduplicated(self):
        tree = BTree([1, 1, 2, 2, 3], fanout=4)
        assert tree.n_keys == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BTree([], fanout=4)
        with pytest.raises(ValueError):
            BTree([1], fanout=2)

    def test_range_descents_paths_share_root(self):
        tree = BTree(range(1000), fanout=8)
        rng = np.random.default_rng(0)
        paths = tree.range_descents(rng, 10, 0, 999)
        roots = {path[0] for path in paths}
        assert len(roots) == 1

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.integers(0, 10_000), min_size=1, max_size=400),
           fanout=st.sampled_from([3, 8, 32]))
    def test_structure_invariants(self, keys, fanout):
        tree = BTree(keys, fanout=fanout)
        unique = sorted(set(keys))
        assert tree.n_keys == len(unique)
        assert tree.min_key == unique[0]
        assert tree.max_key == unique[-1]
        # Every key reachable; every path exactly `height` nodes.
        for key in unique[:20]:
            value, path = tree.search(key)
            assert value == key
            assert len(path) == tree.height


class TestPathOverlap:
    def test_identical_paths_full_overlap(self):
        assert path_overlap([[1, 2, 3], [1, 2, 3]]) == pytest.approx(0.5)

    def test_single_path_defined_as_one(self):
        assert path_overlap([[1, 2, 3]]) == 1.0

    def test_disjoint_paths_low_overlap(self):
        overlap = path_overlap([[1, 2, 3], [4, 5, 6]])
        assert overlap == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            path_overlap([])

    def test_overlap_increases_with_shared_prefix(self):
        shared = path_overlap([[1, 2, 3], [1, 2, 4]])
        divergent = path_overlap([[1, 2, 3], [1, 5, 6]])
        assert shared > divergent


class TestDescentModulator:
    def make(self, **kwargs):
        tree = BTree(range(20_000), fanout=16)
        return BTreeDescentModulator(tree, **kwargs)

    def test_locality_within_configured_band(self):
        modulator = self.make(min_locality=0.9, max_locality=0.99)
        profile = ExecutionProfile()
        rng = np.random.default_rng(1)
        values = [modulator.modulate(profile, rng).data_locality
                  for _ in range(300)]
        assert min(values) >= 0.9
        assert max(values) <= 0.99

    def test_locality_varies_over_time(self):
        modulator = self.make(min_locality=0.85, max_locality=0.99)
        profile = ExecutionProfile()
        rng = np.random.default_rng(2)
        values = [modulator.modulate(profile, rng).data_locality
                  for _ in range(400)]
        assert np.std(values) > 0.001

    def test_walk_is_autocorrelated(self):
        """The width random walk makes consecutive chunks similar — the
        slow 'apparent phases' of Figure 11."""
        modulator = self.make(width_walk_sigma=0.2)
        profile = ExecutionProfile()
        rng = np.random.default_rng(3)
        values = np.array([modulator.modulate(profile, rng).data_locality
                           for _ in range(500)])
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        shuffled = values.copy()
        rng.shuffle(shuffled)
        lag1_shuffled = np.corrcoef(shuffled[:-1], shuffled[1:])[0, 1]
        assert lag1 > lag1_shuffled + 0.2

    def test_reset(self):
        modulator = self.make()
        profile = ExecutionProfile()
        rng = np.random.default_rng(4)
        for _ in range(50):
            modulator.modulate(profile, rng)
        modulator.reset()
        mid = (modulator._LOG_WIDTH_LOW + modulator._LOG_WIDTH_HIGH) / 2
        assert modulator._log_width == mid

    def test_validation(self):
        tree = BTree(range(100), fanout=4)
        with pytest.raises(ValueError):
            BTreeDescentModulator(tree, probes_per_chunk=1)
        with pytest.raises(ValueError):
            BTreeDescentModulator(tree, min_locality=0.9, max_locality=0.5)
        with pytest.raises(ValueError):
            BTreeDescentModulator(tree, width_walk_sigma=-1)
