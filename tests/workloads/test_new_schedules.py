"""Tests for CyclicMixSchedule, EpisodeState sharing, and OUModulator."""

import numpy as np
import pytest

from repro.uarch.cpu import ExecutionProfile
from repro.workloads.program import (
    CyclicMixSchedule,
    EpisodeState,
    EpisodicSchedule,
    FlatMixSchedule,
)
from repro.workloads.regions import CodeRegion, OUModulator

RNG = np.random.default_rng(0)


def make_regions(n, prefix="r"):
    return [CodeRegion(name=f"{prefix}{i}", eip_base=0x1000 * (i + 1),
                       n_eips=4, profile=ExecutionProfile())
            for i in range(n)]


class TestCyclicMixSchedule:
    def make(self, concentration=1e6):
        regions = make_regions(2)
        phases = [([0.9, 0.1], 100), ([0.1, 0.9], 100)]
        return regions, CyclicMixSchedule(regions, phases,
                                          dirichlet_concentration=concentration)

    def test_pure_phase_weights(self):
        regions, schedule = self.make()
        plan = schedule.advance(RNG, 50)
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights["r0"] == pytest.approx(0.9, abs=0.01)

    def test_boundary_chunk_blends_phases(self):
        regions, schedule = self.make()
        schedule.advance(RNG, 50)
        plan = schedule.advance(RNG, 100)  # 50 in each phase
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights["r0"] == pytest.approx(0.5, abs=0.01)

    def test_wraps_and_resets(self):
        regions, schedule = self.make()
        schedule.advance(RNG, 150)   # into phase 2
        schedule.reset()
        plan = schedule.advance(RNG, 10)
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights["r0"] == pytest.approx(0.9, abs=0.01)

    def test_chunk_longer_than_cycle_averages(self):
        regions, schedule = self.make()
        plan = schedule.advance(RNG, 400)  # two full cycles
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights["r0"] == pytest.approx(0.5, abs=0.01)

    def test_dirichlet_noise_scales_with_concentration(self):
        regions_a, tight = self.make(concentration=1e5)
        regions_b, loose = self.make(concentration=20)
        tight_draws = [dict((r.name, w) for r, w in
                            tight.advance(RNG, 10).parts)["r0"]
                       for _ in range(50)]
        loose.reset()
        loose_draws = [dict((r.name, w) for r, w in
                            loose.advance(RNG, 10).parts)["r0"]
                       for _ in range(5)]
        # reset both to phase 0 between draws is unnecessary for spread
        assert np.std(tight_draws[:5]) < 0.05
        assert np.std(loose_draws) > np.std(tight_draws[:5])

    def test_validation(self):
        regions = make_regions(2)
        with pytest.raises(ValueError):
            CyclicMixSchedule([], [([1.0], 10)])
        with pytest.raises(ValueError):
            CyclicMixSchedule(regions, [])
        with pytest.raises(ValueError):
            CyclicMixSchedule(regions, [([0.5], 10)])   # wrong width
        with pytest.raises(ValueError):
            CyclicMixSchedule(regions, [([0.5, 0.5], 0)])
        with pytest.raises(ValueError):
            CyclicMixSchedule(regions, [([-1.0, 2.0], 10)])
        schedule = CyclicMixSchedule(regions, [([0.5, 0.5], 10)])
        with pytest.raises(ValueError):
            schedule.advance(RNG, 0)


class TestEpisodeState:
    def test_rate_zero_never_fires(self):
        state = EpisodeState(rate=0.0, mean_length=10)
        assert not any(state.step(RNG) for _ in range(200))

    def test_rate_one_always_active(self):
        state = EpisodeState(rate=1.0, mean_length=5)
        assert all(state.step(RNG) for _ in range(50))

    def test_shared_state_synchronizes_schedules(self):
        """Stop-the-world: two schedules sharing one state see episodes at
        the same time steps."""
        regions = make_regions(2)
        episode = make_regions(1, prefix="gc")[0]
        state = EpisodeState(rate=0.2, mean_length=3)
        schedules = [
            EpisodicSchedule(FlatMixSchedule([regions[i]]), episode,
                             rate=0.0, mean_length=1, episode_weight=0.5,
                             state=state)
            for i in range(2)
        ]
        # Alternate advances: the state steps once per advance, so "active"
        # stretches are interleaved but driven by one process.
        active_counts = 0
        for _ in range(200):
            for schedule in schedules:
                plan = schedule.advance(RNG, 10)
                if episode in plan.regions:
                    active_counts += 1
        assert active_counts > 0

    def test_mean_episode_fraction(self):
        state = EpisodeState(rate=0.01, mean_length=50)
        active = sum(state.step(RNG) for _ in range(20_000))
        fraction = active / 20_000
        # Expected ~ rate*mean/(1+rate*mean) = 1/3.
        assert 0.2 < fraction < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            EpisodeState(rate=1.5, mean_length=10)
        with pytest.raises(ValueError):
            EpisodeState(rate=0.5, mean_length=0)

    def test_reset(self):
        state = EpisodeState(rate=1.0, mean_length=1000)
        state.step(RNG)
        state.reset()
        assert state._chunks_left == 0


class TestOUModulator:
    def test_stationary_spread(self):
        modulator = OUModulator(sigma=0.02, rho=0.5)
        profile = ExecutionProfile(data_locality=0.5)
        rng = np.random.default_rng(1)
        values = np.array([modulator.modulate(profile, rng).data_locality
                           for _ in range(5000)])
        assert np.std(values) == pytest.approx(0.02, abs=0.004)
        assert np.mean(values) == pytest.approx(0.5, abs=0.01)

    def test_autocorrelation(self):
        modulator = OUModulator(sigma=0.02, rho=0.99)
        profile = ExecutionProfile(data_locality=0.5)
        rng = np.random.default_rng(2)
        values = np.array([modulator.modulate(profile, rng).data_locality
                           for _ in range(2000)])
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert lag1 > 0.9

    def test_clamped_to_unit_interval(self):
        modulator = OUModulator(sigma=0.5, rho=0.0)
        profile = ExecutionProfile(data_locality=0.95)
        rng = np.random.default_rng(3)
        for _ in range(500):
            value = modulator.modulate(profile, rng).data_locality
            assert 0.0 <= value <= 1.0

    def test_reset(self):
        modulator = OUModulator(sigma=0.1, rho=0.9)
        rng = np.random.default_rng(4)
        for _ in range(50):
            modulator.modulate(ExecutionProfile(), rng)
        modulator.reset()
        assert modulator._x == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OUModulator(sigma=-0.1)
        with pytest.raises(ValueError):
            OUModulator(sigma=0.1, rho=1.0)
