"""Tests for programs and schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cpu import ExecutionProfile
from repro.workloads.program import (
    BlendedSchedule,
    ChunkPlan,
    CyclicSchedule,
    DriftMixSchedule,
    EpisodicSchedule,
    FlatMixSchedule,
    MarkovSchedule,
    Program,
)
from repro.workloads.regions import CodeRegion


def make_regions(n, prefix="r"):
    return [CodeRegion(name=f"{prefix}{i}", eip_base=0x1000 * (i + 1),
                       n_eips=4, profile=ExecutionProfile())
            for i in range(n)]


RNG = np.random.default_rng(0)


class TestChunkPlan:
    def test_single(self):
        r = make_regions(1)[0]
        plan = ChunkPlan.single(r)
        assert plan.parts == ((r, 1.0),)
        assert plan.regions == [r]

    def test_weights_must_sum_to_one(self):
        r1, r2 = make_regions(2)
        with pytest.raises(ValueError):
            ChunkPlan(parts=((r1, 0.5), (r2, 0.6)))

    def test_weights_must_be_positive(self):
        r1, r2 = make_regions(2)
        with pytest.raises(ValueError):
            ChunkPlan(parts=((r1, 1.2), (r2, -0.2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChunkPlan(parts=())


class TestCyclicSchedule:
    def test_pure_chunk_within_phase(self):
        r1, r2 = make_regions(2)
        schedule = CyclicSchedule([(r1, 100), (r2, 100)])
        plan = schedule.advance(RNG, 50)
        assert plan.parts == ((r1, 1.0),)

    def test_chunk_spanning_boundary_split_proportionally(self):
        r1, r2 = make_regions(2)
        schedule = CyclicSchedule([(r1, 100), (r2, 100)])
        schedule.advance(RNG, 80)
        plan = schedule.advance(RNG, 40)  # 20 in each phase
        weights = dict((region.name, weight)
                       for region, weight in plan.parts)
        assert weights["r0"] == pytest.approx(0.5)
        assert weights["r1"] == pytest.approx(0.5)

    def test_wraps_around(self):
        r1, r2 = make_regions(2)
        schedule = CyclicSchedule([(r1, 100), (r2, 100)])
        schedule.advance(RNG, 150)
        plan = schedule.advance(RNG, 100)  # 50 in each (wrapped)
        weights = dict((region.name, weight)
                       for region, weight in plan.parts)
        assert weights["r0"] == pytest.approx(0.5)
        assert weights["r1"] == pytest.approx(0.5)

    def test_chunk_longer_than_cycle(self):
        r1, r2 = make_regions(2)
        schedule = CyclicSchedule([(r1, 100), (r2, 300)])
        plan = schedule.advance(RNG, 800)  # two full cycles
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights["r0"] == pytest.approx(0.25)
        assert weights["r1"] == pytest.approx(0.75)

    def test_reset(self):
        r1, r2 = make_regions(2)
        schedule = CyclicSchedule([(r1, 100), (r2, 100)])
        schedule.advance(RNG, 130)
        schedule.reset()
        assert schedule.advance(RNG, 50).parts[0][0] is r1

    def test_validation(self):
        r1 = make_regions(1)[0]
        with pytest.raises(ValueError):
            CyclicSchedule([])
        with pytest.raises(ValueError):
            CyclicSchedule([(r1, 0)])
        with pytest.raises(ValueError):
            CyclicSchedule([(r1, 10)]).advance(RNG, 0)

    @settings(max_examples=30, deadline=None)
    @given(durations=st.lists(st.integers(1, 500), min_size=1, max_size=5),
           chunks=st.lists(st.integers(1, 700), min_size=1, max_size=10))
    def test_weights_always_sum_to_one(self, durations, chunks):
        regions = make_regions(len(durations))
        schedule = CyclicSchedule(list(zip(regions, durations)))
        for chunk in chunks:
            plan = schedule.advance(RNG, chunk)
            assert sum(w for _, w in plan.parts) == pytest.approx(1.0)


class TestMarkovSchedule:
    def test_single_region_per_chunk(self):
        regions = make_regions(3)
        transition = np.full((3, 3), 1 / 3)
        schedule = MarkovSchedule(regions, transition, [5, 5, 5])
        plan = schedule.advance(RNG, 100)
        assert len(plan.parts) == 1

    def test_visits_all_states(self):
        regions = make_regions(3)
        transition = np.full((3, 3), 1 / 3)
        schedule = MarkovSchedule(regions, transition, [2, 2, 2])
        seen = {schedule.advance(RNG, 10).parts[0][0].name
                for _ in range(300)}
        assert seen == {"r0", "r1", "r2"}

    def test_validation(self):
        regions = make_regions(2)
        with pytest.raises(ValueError):
            MarkovSchedule(regions, [[1.0]], [1])
        with pytest.raises(ValueError):
            MarkovSchedule(regions, [[0.5, 0.4], [0.5, 0.5]], [1, 1])
        with pytest.raises(ValueError):
            MarkovSchedule(regions, np.full((2, 2), 0.5), [0, 1])


class TestFlatMixSchedule:
    def test_every_chunk_touches_many_regions(self):
        regions = make_regions(10)
        schedule = FlatMixSchedule(regions)
        plan = schedule.advance(RNG, 100)
        assert len(plan.parts) == 10

    def test_weights_track_base_mixture(self):
        regions = make_regions(2)
        schedule = FlatMixSchedule(regions, weights=[3.0, 1.0],
                                   dirichlet_concentration=5000.0)
        draws = [dict((r.name, w) for r, w in
                      schedule.advance(RNG, 10).parts)
                 for _ in range(100)]
        mean_r0 = np.mean([d["r0"] for d in draws])
        assert mean_r0 == pytest.approx(0.75, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatMixSchedule([])
        with pytest.raises(ValueError):
            FlatMixSchedule(make_regions(2), weights=[1.0, 0.0])


class TestDriftMixSchedule:
    def test_weights_drift_toward_end_state(self):
        regions = make_regions(2)
        schedule = DriftMixSchedule(regions, [1.0, 0.0001], [0.0001, 1.0],
                                    horizon=1000,
                                    dirichlet_concentration=10000.0)
        early = dict((r.name, w)
                     for r, w in schedule.advance(RNG, 10).parts)
        for _ in range(200):
            schedule.advance(RNG, 10)
        late = dict((r.name, w)
                    for r, w in schedule.advance(RNG, 10).parts)
        assert early["r0"] > 0.9
        assert late["r1"] > 0.9

    def test_reset_restores_start(self):
        regions = make_regions(2)
        schedule = DriftMixSchedule(regions, [1.0, 0.001], [0.001, 1.0],
                                    horizon=100,
                                    dirichlet_concentration=10000.0)
        for _ in range(50):
            schedule.advance(RNG, 10)
        schedule.reset()
        plan = dict((r.name, w) for r, w in schedule.advance(RNG, 1).parts)
        assert plan["r0"] > 0.9


class TestEpisodicSchedule:
    def test_episode_dominated_by_episode_region(self):
        regions = make_regions(2)
        episode = make_regions(1, prefix="gc")[0]
        schedule = EpisodicSchedule(FlatMixSchedule(regions), episode,
                                    rate=1.0, mean_length=1000,
                                    episode_weight=0.9)
        plan = schedule.advance(RNG, 10)
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights["r0"] < 0.1
        assert weights[episode.name] == pytest.approx(0.9)

    def test_zero_rate_never_enters_episode(self):
        regions = make_regions(2)
        episode = make_regions(1, prefix="gc")[0]
        schedule = EpisodicSchedule(FlatMixSchedule(regions), episode,
                                    rate=0.0, mean_length=10)
        for _ in range(50):
            plan = schedule.advance(RNG, 10)
            assert episode not in plan.regions

    def test_regions_include_episode(self):
        regions = make_regions(2)
        episode = make_regions(1, prefix="gc")[0]
        schedule = EpisodicSchedule(FlatMixSchedule(regions), episode,
                                    rate=0.5, mean_length=2)
        assert episode in schedule.regions


class TestBlendedSchedule:
    def test_background_always_present(self):
        regions = make_regions(2)
        background = make_regions(1, prefix="bg")[0]
        schedule = BlendedSchedule(
            CyclicSchedule([(regions[0], 50), (regions[1], 50)]),
            background, weight=0.25)
        plan = schedule.advance(RNG, 10)
        weights = dict((r.name, w) for r, w in plan.parts)
        assert weights[background.name] == pytest.approx(0.25)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_regions_include_background(self):
        regions = make_regions(2)
        background = make_regions(1, prefix="bg")[0]
        schedule = BlendedSchedule(
            CyclicSchedule([(regions[0], 50), (regions[1], 50)]),
            background, weight=0.3)
        assert background in schedule.regions


class TestProgram:
    def test_regions_deduplicated(self):
        r1, r2 = make_regions(2)
        program = Program("p", CyclicSchedule([(r1, 10), (r2, 10),
                                               (r1, 10)]))
        assert program.regions == [r1, r2]

    def test_reset_resets_schedule_and_regions(self):
        r1, r2 = make_regions(2)
        program = Program("p", CyclicSchedule([(r1, 100), (r2, 100)]))
        program.advance(RNG, 150)
        program.reset()
        assert program.advance(RNG, 10).parts[0][0] is r1
