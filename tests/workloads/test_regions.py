"""Tests for code regions and profile modulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cpu import ExecutionProfile
from repro.workloads.regions import (
    EIP_STRIDE,
    CodeRegion,
    RandomLatencyModulator,
    RandomWalkModulator,
    layout_regions,
)


def region(n_eips=10, base=0x1000, **kwargs):
    return CodeRegion(name="r", eip_base=base, n_eips=n_eips,
                      profile=ExecutionProfile(), **kwargs)


class TestCodeRegion:
    def test_eips_are_spaced_by_stride(self):
        r = region(n_eips=4, base=0x1000)
        assert list(r.eips) == [0x1000, 0x1000 + EIP_STRIDE,
                                0x1000 + 2 * EIP_STRIDE,
                                0x1000 + 3 * EIP_STRIDE]
        assert r.eip_end == 0x1000 + 4 * EIP_STRIDE

    def test_sample_eips_within_region(self):
        r = region(n_eips=16)
        rng = np.random.default_rng(0)
        samples = r.sample_eips(rng, 200)
        assert samples.min() >= r.eip_base
        assert samples.max() < r.eip_end
        assert ((samples - r.eip_base) % EIP_STRIDE == 0).all()

    def test_concentration_skews_samples(self):
        rng = np.random.default_rng(0)
        flat = region(n_eips=100, eip_concentration=0.0)
        skewed = region(n_eips=100, eip_concentration=2.0)
        flat_counts = np.bincount(
            (flat.sample_eips(rng, 5000) - flat.eip_base) // EIP_STRIDE,
            minlength=100)
        skewed_counts = np.bincount(
            (skewed.sample_eips(rng, 5000) - skewed.eip_base) // EIP_STRIDE,
            minlength=100)
        # The hottest EIP should dominate much more under skew.
        assert skewed_counts.max() > 2 * flat_counts.max()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            region().sample_eips(np.random.default_rng(0), -1)

    @pytest.mark.parametrize("kwargs", [
        {"n_eips": 0}, {"jitter": -0.1}, {"eip_concentration": -1.0},
    ])
    def test_invalid_regions_rejected(self, kwargs):
        with pytest.raises(ValueError):
            region(**{"n_eips": 10, **kwargs})

    def test_static_region_profile_unchanged(self):
        r = region()
        rng = np.random.default_rng(0)
        assert r.chunk_profile(rng) is r.profile


class TestModulators:
    def test_random_latency_bounds(self):
        modulator = RandomLatencyModulator(locality_sigma=0.5,
                                           mispredict_sigma=0.5)
        profile = ExecutionProfile(data_locality=0.5, mispredict_rate=0.5)
        rng = np.random.default_rng(1)
        for _ in range(200):
            modulated = modulator.modulate(profile, rng)
            assert 0.0 <= modulated.data_locality <= 1.0
            assert 0.0 <= modulated.mispredict_rate <= 1.0

    def test_random_walk_stays_in_band(self):
        modulator = RandomWalkModulator(step_sigma=0.05, low=0.4, high=0.9)
        profile = ExecutionProfile(data_locality=0.65)
        rng = np.random.default_rng(2)
        values = [modulator.modulate(profile, rng).data_locality
                  for _ in range(500)]
        assert min(values) >= 0.4
        assert max(values) <= 0.9

    def test_random_walk_is_autocorrelated(self):
        modulator = RandomWalkModulator(step_sigma=0.01, low=0.1, high=0.99)
        profile = ExecutionProfile(data_locality=0.5)
        rng = np.random.default_rng(3)
        values = np.array([modulator.modulate(profile, rng).data_locality
                           for _ in range(400)])
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert lag1 > 0.8

    def test_random_walk_reset(self):
        modulator = RandomWalkModulator(step_sigma=0.1)
        profile = ExecutionProfile(data_locality=0.5)
        rng = np.random.default_rng(4)
        for _ in range(50):
            modulator.modulate(profile, rng)
        modulator.reset()
        assert modulator._offset == 0.0

    @pytest.mark.parametrize("factory", [
        lambda: RandomLatencyModulator(locality_sigma=-1),
        lambda: RandomWalkModulator(step_sigma=-1),
        lambda: RandomWalkModulator(step_sigma=0.1, low=0.9, high=0.1),
    ])
    def test_invalid_modulators_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestLayout:
    def test_regions_are_disjoint_and_consecutive(self):
        specs = [
            lambda base: region(n_eips=8, base=base),
            lambda base: region(n_eips=4, base=base),
            lambda base: region(n_eips=16, base=base),
        ]
        regions = layout_regions(specs, start=0x1000)
        for first, second in zip(regions, regions[1:]):
            assert second.eip_base == first.eip_end

    def test_factory_must_honour_base(self):
        with pytest.raises(ValueError):
            layout_regions([lambda base: region(base=0xDEAD)], start=0x1000)


@settings(max_examples=30, deadline=None)
@given(n_eips=st.integers(1, 200), concentration=st.floats(0.0, 3.0),
       count=st.integers(0, 100))
def test_sample_eips_properties(n_eips, concentration, count):
    r = region(n_eips=n_eips, eip_concentration=concentration)
    samples = r.sample_eips(np.random.default_rng(0), count)
    assert len(samples) == count
    if count:
        assert set(samples) <= set(r.eips)
