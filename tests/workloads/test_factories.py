"""Tests for the workload registry and every benchmark factory."""

import numpy as np
import pytest

from repro.uarch.machine import itanium2
from repro.workloads.dss import QUERY_NAMES, QUERY_SPECS, odbh_query_workload
from repro.workloads.query_ops import build_index
from repro.workloads.registry import get_workload, workload_names
from repro.workloads.scale import PAPER, SCALES, TINY, get_scale
from repro.workloads.spec import SPEC_NAMES, SPEC_SPECS, spec_workload
from repro.workloads.system import SimulatedSystem


class TestRegistry:
    def test_census_has_fifty_workloads(self):
        names = workload_names()
        assert len(names) == 50
        assert names[0] == "odbc"
        assert "odbh.q13" in names
        assert "spec.mcf" in names

    def test_every_workload_builds(self):
        for name in workload_names():
            workload = get_workload(name, TINY)
            assert workload.threads
            assert "paper_quadrant" in workload.metadata

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="odbc"):
            get_workload("doom")

    def test_filters(self):
        assert len(workload_names(include_spec=False)) == 24
        assert len(workload_names(include_dss=False)) == 28
        assert len(workload_names(include_server=False)) == 48


class TestScales:
    def test_presets(self):
        assert set(SCALES) == {"tiny", "default", "paper"}
        assert get_scale("tiny") is TINY

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_eips_scaling(self):
        assert PAPER.eips(1000) == 1000
        assert TINY.eips(1000) == 20
        assert TINY.eips(10, minimum=8) == 8

    def test_validation(self):
        from repro.workloads.scale import WorkloadScale
        with pytest.raises(ValueError):
            WorkloadScale(name="x", eip_scale=0, server_threads=1)
        with pytest.raises(ValueError):
            WorkloadScale(name="x", eip_scale=1, server_threads=0)


class TestDSS:
    def test_twenty_two_queries(self):
        assert len(QUERY_NAMES) == 22
        assert QUERY_NAMES[0] == "Q1"

    def test_quadrant_census_matches_paper_counts(self):
        counts = {}
        for spec in QUERY_SPECS:
            counts[spec.quadrant] = counts.get(spec.quadrant, 0) + 1
        assert counts == {"Q-I": 4, "Q-II": 2, "Q-III": 7, "Q-IV": 9}

    def test_q13_and_q18_archetypes(self):
        q13 = odbh_query_workload("Q13", TINY)
        q18 = odbh_query_workload("Q18", TINY)
        assert q13.metadata["paper_quadrant"] == "Q-IV"
        assert q18.metadata["paper_quadrant"] == "Q-III"
        # Q18's plan must include a modulated (index-scan) region.
        assert any(r.modulator is not None for r in q18.all_regions)
        assert all(r.modulator is None for r in q13.all_regions)

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            odbh_query_workload("Q23")

    def test_slaves_share_schedule(self):
        workload = odbh_query_workload("Q13", TINY)
        programs = {id(t.program) for t in workload.threads}
        assert len(programs) == 1

    def test_index_uses_real_btree(self):
        from repro.workloads.database import odbh_database
        tree = build_index(odbh_database().table("orders"))
        assert tree.height >= 3


class TestSpec:
    def test_twenty_six_benchmarks(self):
        assert len(SPEC_NAMES) == 26

    def test_quadrant_census_matches_paper_counts(self):
        counts = {}
        for spec in SPEC_SPECS:
            counts[spec.quadrant] = counts.get(spec.quadrant, 0) + 1
        assert counts == {"Q-I": 13, "Q-II": 3, "Q-III": 7, "Q-IV": 3}

    def test_gcc_and_gap_in_q3(self):
        for name in ("gcc", "gap"):
            workload = spec_workload(name, TINY)
            assert workload.metadata["paper_quadrant"] == "Q-III"

    def test_single_user_thread(self):
        workload = spec_workload("gzip", TINY)
        assert len(workload.threads) == 1

    def test_suites(self):
        suites = {spec.suite for spec in SPEC_SPECS}
        assert suites == {"int", "fp"}
        assert sum(s.suite == "int" for s in SPEC_SPECS) == 12

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            spec_workload("doom")


class TestEIPDisjointness:
    @pytest.mark.parametrize("name", ["odbc", "sjas", "odbh.q18",
                                      "spec.gcc"])
    def test_region_eip_ranges_do_not_overlap(self, name):
        workload = get_workload(name, TINY)
        ranges = sorted((r.eip_base, r.eip_end)
                        for r in workload.all_regions)
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert start_b >= end_a


@pytest.mark.parametrize("name", ["odbc", "odbh.q13", "spec.art"])
def test_workloads_run_end_to_end_at_tiny_scale(name):
    workload = get_workload(name, TINY)
    system = SimulatedSystem(itanium2(), workload, seed=0)
    slices = system.run(2_000_000)
    assert sum(s.instructions for s in slices) == 2_000_000
    cpis = np.array([s.cpi for s in slices])
    assert (cpis > 0.1).all() and (cpis < 60).all()
