"""Tests for the table / buffer-pool / schema models."""

import pytest

from repro.workloads.database import (
    GB,
    PAGE_BYTES,
    BufferPool,
    Database,
    Table,
    odbc_database,
    odbh_database,
)


class TestTable:
    def test_sizes(self):
        table = Table("t", rows=1000, row_bytes=100)
        assert table.bytes == 100_000
        assert table.pages == 100_000 // PAGE_BYTES

    def test_validation(self):
        with pytest.raises(ValueError):
            Table("t", rows=0, row_bytes=10)
        with pytest.raises(ValueError):
            Table("t", rows=10, row_bytes=0)


class TestBufferPool:
    def test_pin_within_capacity(self):
        pool = BufferPool(1_000_000)
        table = Table("t", rows=100, row_bytes=100)
        assert pool.pin(table) == 1.0
        assert pool.resident_fraction(table) == 1.0

    def test_pin_beyond_capacity_partial(self):
        pool = BufferPool(5_000)
        table = Table("t", rows=100, row_bytes=100)
        assert pool.pin(table) == 0.5

    def test_pinning_order_matters(self):
        pool = BufferPool(10_000)
        hot = Table("hot", rows=80, row_bytes=100)
        cold = Table("cold", rows=100, row_bytes=100)
        pool.pin(hot)
        fraction = pool.pin(cold)
        assert fraction == pytest.approx(0.2)
        assert pool.free_bytes == 0

    def test_repin_is_idempotent(self):
        pool = BufferPool(10_000)
        table = Table("t", rows=50, row_bytes=100)
        pool.pin(table)
        assert pool.pin(table) == 1.0
        assert pool.used_bytes == 5_000

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestDatabase:
    def test_add_and_lookup(self):
        database = Database("d", BufferPool(1_000_000))
        table = database.add_table(Table("t", rows=10, row_bytes=10))
        assert database.table("t") is table

    def test_duplicate_table_rejected(self):
        database = Database("d", BufferPool(1_000_000))
        database.add_table(Table("t", rows=10, row_bytes=10))
        with pytest.raises(ValueError):
            database.add_table(Table("t", rows=10, row_bytes=10))

    def test_unknown_table_raises_with_known_names(self):
        database = Database("d", BufferPool(1_000_000))
        database.add_table(Table("orders", rows=10, row_bytes=10))
        with pytest.raises(KeyError, match="orders"):
            database.table("nope")


class TestSchemas:
    def test_odbh_schema_shape(self):
        database = odbh_database()
        # Lineitem dominates, as in TPC-H.
        lineitem = database.table("lineitem")
        assert lineitem.bytes == max(t.bytes for t in database.tables)
        # 30 GB scale: total data is tens of GB, far beyond the 2 GB SGA.
        assert database.total_bytes() > 5 * database.pool.capacity_bytes

    def test_odbh_scaling(self):
        small = odbh_database(scale_gb=3)
        big = odbh_database(scale_gb=30)
        assert big.table("lineitem").rows \
            == pytest.approx(10 * small.table("lineitem").rows, rel=0.01)

    def test_odbc_schema_shape(self):
        database = odbc_database(warehouses=800)
        # Paper setup: 14 GB SGA holds most of the working set.
        assert database.pool.capacity_bytes == 14 * GB
        assert database.table("stock").rows == 800 * 100_000

    def test_odbc_warehouse_scaling(self):
        assert odbc_database(warehouses=10).table("customer").rows \
            == 300_000
