"""Tests for the scheduler and OS model."""

import numpy as np
import pytest

from repro.uarch.cpu import ExecutionProfile
from repro.workloads.os_model import (
    Scheduler,
    SchedulerConfig,
    make_kernel_thread,
)
from repro.workloads.program import FlatMixSchedule, Program
from repro.workloads.regions import CodeRegion
from repro.workloads.thread_model import WorkloadThread


def user_thread(thread_id, weight=1.0):
    region = CodeRegion(name=f"u{thread_id}", eip_base=0x1000 * (thread_id + 1),
                        n_eips=4, profile=ExecutionProfile())
    return WorkloadThread(thread_id=thread_id, process="app",
                          program=Program(f"p{thread_id}",
                                          FlatMixSchedule([region])),
                          weight=weight)


class TestKernelThread:
    def test_kernel_thread_properties(self):
        kernel = make_kernel_thread(thread_id=9, n_eips=30)
        assert kernel.is_kernel
        assert kernel.process == "kernel"
        total = sum(r.n_eips for r in kernel.program.regions)
        assert total == 30

    def test_minimum_eips(self):
        with pytest.raises(ValueError):
            make_kernel_thread(thread_id=0, n_eips=2)


class TestSchedulerConfig:
    @pytest.mark.parametrize("kwargs", [
        {"mean_quantum": 0},
        {"mean_quantum": 100, "os_share": 1.0},
        {"mean_quantum": 100, "cold_warmth": 0.0},
        {"mean_quantum": 100, "kernel_quantum_divisor": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerConfig(**kwargs)


class TestScheduler:
    def test_needs_user_threads(self):
        with pytest.raises(ValueError):
            Scheduler([], SchedulerConfig(mean_quantum=100))

    def test_os_share_requires_kernel(self):
        with pytest.raises(ValueError):
            Scheduler([user_thread(0)],
                      SchedulerConfig(mean_quantum=100, os_share=0.1))

    def test_weighted_selection(self):
        heavy = user_thread(0, weight=9.0)
        light = user_thread(1, weight=1.0)
        scheduler = Scheduler([heavy, light],
                              SchedulerConfig(mean_quantum=100))
        rng = np.random.default_rng(0)
        picks = [scheduler.next_slice(rng)[0].thread_id
                 for _ in range(2000)]
        share = picks.count(0) / len(picks)
        assert share == pytest.approx(0.9, abs=0.03)

    def test_kernel_share(self):
        kernel = make_kernel_thread(thread_id=5, n_eips=9)
        scheduler = Scheduler([user_thread(0)],
                              SchedulerConfig(mean_quantum=100,
                                              os_share=0.3),
                              kernel_thread=kernel)
        rng = np.random.default_rng(1)
        picks = [scheduler.next_slice(rng)[0].is_kernel
                 for _ in range(2000)]
        assert np.mean(picks) == pytest.approx(0.3, abs=0.03)

    def test_kernel_slices_shorter(self):
        kernel = make_kernel_thread(thread_id=5, n_eips=9)
        scheduler = Scheduler(
            [user_thread(0)],
            SchedulerConfig(mean_quantum=8000, os_share=0.5,
                            kernel_quantum_divisor=8),
            kernel_thread=kernel)
        rng = np.random.default_rng(2)
        kernel_lengths = []
        user_lengths = []
        for _ in range(2000):
            thread, length = scheduler.next_slice(rng)
            (kernel_lengths if thread.is_kernel else
             user_lengths).append(length)
        assert np.mean(kernel_lengths) < np.mean(user_lengths) / 4

    def test_context_switch_counting(self):
        threads = [user_thread(0), user_thread(1)]
        scheduler = Scheduler(threads, SchedulerConfig(mean_quantum=100))
        rng = np.random.default_rng(3)
        previous = None
        expected = 0
        for _ in range(500):
            thread, _ = scheduler.next_slice(rng)
            if previous is not None and thread is not previous:
                expected += 1
            previous = thread
        assert scheduler.context_switches == expected
        assert expected > 0

    def test_warmth_cold_after_switch_recovers_when_running(self):
        threads = [user_thread(0), user_thread(1)]
        config = SchedulerConfig(mean_quantum=100, cold_warmth=0.5)
        scheduler = Scheduler(threads, config)
        rng = np.random.default_rng(4)
        previous = None
        for _ in range(500):
            thread, _ = scheduler.next_slice(rng)
            if thread is not previous:
                assert thread.warmth == pytest.approx(0.5)
            else:
                assert thread.warmth > 0.5
            previous = thread

    def test_reset(self):
        threads = [user_thread(0), user_thread(1)]
        scheduler = Scheduler(threads, SchedulerConfig(mean_quantum=100))
        rng = np.random.default_rng(5)
        for _ in range(50):
            scheduler.next_slice(rng)
        scheduler.reset()
        assert scheduler.context_switches == 0
        assert scheduler.current is None
        assert all(t.warmth == 1.0 for t in threads)


class TestWorkloadThread:
    def test_validation(self):
        region = CodeRegion(name="r", eip_base=0, n_eips=2,
                            profile=ExecutionProfile())
        program = Program("p", FlatMixSchedule([region]))
        with pytest.raises(ValueError):
            WorkloadThread(thread_id=-1, process="x", program=program)
        with pytest.raises(ValueError):
            WorkloadThread(thread_id=0, process="x", program=program,
                           weight=0)
