"""Tests for the simulated system (slice stream, contention, determinism)."""

import numpy as np
import pytest

from repro.uarch.cpu import ExecutionProfile
from repro.uarch.machine import itanium2
from repro.workloads.os_model import SchedulerConfig
from repro.workloads.program import FlatMixSchedule, Program
from repro.workloads.regions import CodeRegion
from repro.workloads.system import (
    ContentionModel,
    SimulatedSystem,
    Workload,
)
from repro.workloads.thread_model import WorkloadThread


def tiny_workload(n_threads=2, contention=None, jitter=0.05):
    threads = []
    for i in range(n_threads):
        region = CodeRegion(name=f"r{i}", eip_base=0x1000 * (i + 1),
                            n_eips=8, profile=ExecutionProfile(),
                            jitter=jitter)
        threads.append(WorkloadThread(
            thread_id=i, process="app",
            program=Program(f"p{i}", FlatMixSchedule([region]))))
    return Workload(
        name="tiny",
        threads=threads,
        scheduler=SchedulerConfig(mean_quantum=5_000),
        sample_period=10_000,
        contention=contention,
    )


class TestSliceStream:
    def test_slices_cover_exact_total(self):
        system = SimulatedSystem(itanium2(), tiny_workload(), seed=0)
        slices = system.run(100_000)
        assert sum(s.instructions for s in slices) == 100_000
        assert slices[0].start_instruction == 0
        for a, b in zip(slices, slices[1:]):
            assert b.start_instruction == a.end_instruction

    def test_cycles_monotonic(self):
        system = SimulatedSystem(itanium2(), tiny_workload(), seed=0)
        slices = system.run(100_000)
        for a, b in zip(slices, slices[1:]):
            assert b.start_cycle == pytest.approx(a.end_cycle)
            assert b.end_cycle > b.start_cycle

    def test_deterministic_under_seed(self):
        run1 = SimulatedSystem(itanium2(), tiny_workload(), seed=7) \
            .run(50_000)
        run2 = SimulatedSystem(itanium2(), tiny_workload(), seed=7) \
            .run(50_000)
        assert [s.thread_id for s in run1] == [s.thread_id for s in run2]
        assert [s.breakdown.cycles for s in run1] \
            == [s.breakdown.cycles for s in run2]

    def test_different_seeds_differ(self):
        run1 = SimulatedSystem(itanium2(), tiny_workload(), seed=1) \
            .run(50_000)
        run2 = SimulatedSystem(itanium2(), tiny_workload(), seed=2) \
            .run(50_000)
        assert [s.breakdown.cycles for s in run1] \
            != [s.breakdown.cycles for s in run2]

    def test_invalid_total_rejected(self):
        system = SimulatedSystem(itanium2(), tiny_workload(), seed=0)
        with pytest.raises(ValueError):
            list(system.slices(0))

    def test_reset_reproduces_run(self):
        system = SimulatedSystem(itanium2(), tiny_workload(), seed=3)
        first = [s.breakdown.cycles for s in system.run(30_000)]
        system.reset(seed=3)
        second = [s.breakdown.cycles for s in system.run(30_000)]
        assert first == second

    def test_cpi_in_sane_range(self):
        system = SimulatedSystem(itanium2(), tiny_workload(), seed=0)
        for piece in system.run(100_000):
            assert 0.1 < piece.cpi < 50


class TestContention:
    def test_contention_changes_exe_only(self):
        base = SimulatedSystem(itanium2(), tiny_workload(jitter=0.0),
                               seed=5).run(50_000)
        noisy = SimulatedSystem(
            itanium2(),
            tiny_workload(contention=ContentionModel(sigma=0.5, rho=0.5),
                          jitter=0.0),
            seed=5).run(50_000)
        assert len(base) == len(noisy)
        for a, b in zip(base, noisy):
            assert a.breakdown.work == pytest.approx(b.breakdown.work)
            assert a.breakdown.other == pytest.approx(b.breakdown.other)

    def test_contention_factors_autocorrelated(self):
        model = ContentionModel(sigma=0.3, rho=0.99)
        rng = np.random.default_rng(0)
        values = np.log([model.next_factors(rng)[0] for _ in range(500)])
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert lag1 > 0.9

    def test_contention_stationary_spread(self):
        model = ContentionModel(sigma=0.2, rho=0.5)
        rng = np.random.default_rng(1)
        values = np.log([model.next_factors(rng)[0] for _ in range(4000)])
        assert np.std(values) == pytest.approx(0.2, abs=0.03)

    def test_zero_sigma_is_identity(self):
        model = ContentionModel(sigma=0.0)
        rng = np.random.default_rng(2)
        assert model.next_factors(rng) == (1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionModel(sigma=-0.1)
        with pytest.raises(ValueError):
            ContentionModel(sigma=0.1, rho=1.0)
        with pytest.raises(ValueError):
            ContentionModel(sigma=0.1, fe_coupling=2.0)

    def test_reset(self):
        model = ContentionModel(sigma=0.3, rho=0.99)
        rng = np.random.default_rng(3)
        for _ in range(100):
            model.next_factors(rng)
        model.reset()
        assert model._x == 0.0


class TestWorkloadValidation:
    def test_duplicate_thread_ids_rejected(self):
        workload = tiny_workload()
        workload.threads[1].thread_id = 0
        with pytest.raises(ValueError):
            Workload(name="dup", threads=workload.threads,
                     scheduler=workload.scheduler)

    def test_no_threads_rejected(self):
        with pytest.raises(ValueError):
            Workload(name="empty", threads=[],
                     scheduler=SchedulerConfig(mean_quantum=100))

    def test_all_regions_deduplicated(self):
        workload = tiny_workload(n_threads=3)
        regions = workload.all_regions
        assert len(regions) == 3
        assert len({id(r) for r in regions}) == 3
