"""The sweep engine's contract: resume with zero recomputation, merge
byte-identically, steal work across skewed shards."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.graph import JobGraph, submit_graph
from repro.runtime.jobs import JobSpec
from repro.runtime.metrics import MetricsRegistry
from repro.sweep import (SweepError, SweepInterrupted, SweepSpace,
                         SweepStateError, SweepTable, run_sweep)

SPACE = SweepSpace(workloads=("spec.gzip", "spec.art", "spec.mcf"),
                   interval_instructions=(2_000_000, 5_000_000),
                   seeds=(7, 8))  # 3 x 1 x 2 x 2 = 12 points


def report_of(tmp_path, name, **kwargs):
    outcome = run_sweep(SPACE, tmp_path / name, **kwargs)
    assert outcome.n_points == 12
    return outcome


class TestByteIdentity:
    def test_sharded_parallel_equals_serial(self, tmp_path):
        serial = report_of(tmp_path, "serial", jobs=1, shards=1)
        sharded = report_of(tmp_path, "sharded", jobs=2, shards=4)
        assert sharded.report == serial.report
        assert sharded.n_shards == 4 and serial.n_shards == 1
        # The persisted artifacts agree with the returned report.
        assert (tmp_path / "serial" / "report.txt").read_bytes() == \
            (tmp_path / "sharded" / "report.txt").read_bytes()
        table = SweepTable.open(sharded.table_path)
        assert len(table) == 12
        assert table.space_key == SPACE.key

    def test_report_is_pure_text_with_no_timings(self, tmp_path):
        outcome = report_of(tmp_path, "pure", shards=2)
        assert outcome.report.endswith("\n")
        assert SPACE.key in outcome.report
        assert "points        : 12" in outcome.report
        lowered = outcome.report.lower()
        for token in ("wall", "elapsed", "seconds", "time"):
            assert token not in lowered


class TestResume:
    def test_killed_sweep_resumes_with_zero_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_dir = tmp_path / "sweep"
        # Kill after 5 computed points: shard 0 (3 points) completes and
        # persists its partial; shard 1 dies 2 points in.
        with pytest.raises(SweepInterrupted, match="rerun to resume"):
            run_sweep(SPACE, sweep_dir, shards=4, cache=cache, stop_after=5)

        metrics = MetricsRegistry()
        resumed = run_sweep(SPACE, sweep_dir, shards=4, cache=cache,
                            metrics=metrics)
        counters = metrics.snapshot()["counters"]
        # Completed shards never touch the scheduler again...
        assert counters["sweep.shard_resumed"] >= 1
        assert resumed.n_shards_resumed == counters["sweep.shard_resumed"]
        # ...and the killed shard's finished points come back from cache,
        # so across both runs every point computed exactly once.
        assert resumed.n_cached == 2
        # 9 pending points in shards 1-3, two already cached.
        assert resumed.n_executed == 7
        assert counters["sweep.point_cached"] == 2

        serial = run_sweep(SPACE, tmp_path / "baseline", jobs=1, shards=1)
        assert resumed.report == serial.report

    def test_finished_sweep_reruns_for_free(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        run_sweep(SPACE, sweep_dir, shards=3)
        metrics = MetricsRegistry()
        again = run_sweep(SPACE, sweep_dir, shards=3, metrics=metrics)
        assert again.n_shards_resumed == 3
        assert again.n_executed == again.n_cached == 0
        assert "sweep.point_executed" not in metrics.snapshot()["counters"]

    def test_resume_keeps_the_manifest_shard_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_dir = tmp_path / "sweep"
        with pytest.raises(SweepInterrupted):
            run_sweep(SPACE, sweep_dir, shards=4, cache=cache, stop_after=3)
        resumed = run_sweep(SPACE, sweep_dir, shards=2, cache=cache)
        assert resumed.n_shards == 4  # layout pinned by the manifest
        assert any("4 shards" in note for note in resumed.notes)

    def test_wrong_space_refused(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        run_sweep(SPACE, sweep_dir, shards=2)
        other = SweepSpace(workloads=("spec.gzip",), seeds=(7,))
        with pytest.raises(SweepStateError, match="belongs to space"):
            run_sweep(other, sweep_dir)


class TestFailures:
    def test_failed_point_fails_the_sweep_but_persists_the_rest(
            self, tmp_path):
        # Workload names are not validated by the space, so an unknown
        # one builds a spec that fails at execution time.
        bad_space = SweepSpace(workloads=("spec.gzip", "no.such.workload"),
                               seeds=(7, 8))
        cache = ResultCache(tmp_path / "cache")
        sweep_dir = tmp_path / "sweep"
        with pytest.raises(SweepError, match="rerun\n?.*to resume"):
            run_sweep(bad_space, sweep_dir, shards=2, cache=cache)
        # The healthy shard's partial survived; no merged report exists.
        assert not (sweep_dir / "report.txt").exists()
        metrics = MetricsRegistry()
        with pytest.raises(SweepError):
            run_sweep(bad_space, sweep_dir, shards=2, cache=cache,
                      metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters.get("sweep.shard_resumed", 0) >= 1


class TestWorkStealing:
    def test_workers_steal_across_skewed_shards(self):
        # Shard 0 holds points ~5x the cost of shard 1's (more intervals
        # to simulate and regress).  Global-order dispatch through the
        # pool's shared queue means the worker that drains the cheap
        # shard must pull from the expensive one instead of idling.
        expensive = [JobSpec(workload=w, n_intervals=36, seed=9,
                             scale="tiny", k_max=5)
                     for w in ("spec.gzip", "spec.art", "spec.mcf",
                               "spec.gcc")]
        cheap = [JobSpec(workload=w, n_intervals=6, seed=9, scale="tiny",
                         k_max=3, folds=3)
                 for w in ("odbc", "sjas", "odbh.q1", "odbh.q2")]
        graph = JobGraph()
        for spec in expensive + cheap:
            graph.add(spec)
        outcomes = submit_graph(graph, jobs=2)
        assert all(o.ok for o in outcomes)
        workers = {o.worker for o in outcomes}
        assert len(workers) >= 2, f"one worker did everything: {workers}"
        assert all(w.startswith("pid-") for w in workers)
        # Submission order is preserved regardless of who ran what.
        assert [o.spec for o in outcomes] == expensive + cheap
