"""Sweep-space generation: determinism, subsampling, identity."""

import pytest

from repro.sweep import DEFAULT_INTERVALS, SweepSpace, default_space
from repro.workloads.registry import workload_names

WORKLOADS = ("spec.gzip", "spec.art", "spec.mcf")


class TestGeneration:
    def test_same_space_same_specs(self):
        one = SweepSpace(workloads=WORKLOADS, seeds=(7, 8))
        two = SweepSpace(workloads=WORKLOADS, seeds=(7, 8))
        assert one.key == two.key
        assert [s.key for s in one.specs()] == [s.key for s in two.specs()]

    def test_product_order_and_size(self):
        space = SweepSpace(workloads=WORKLOADS,
                           machines=("itanium2", "pentium4"),
                           interval_instructions=(2_000_000,),
                           seeds=(7,))
        specs = space.specs()
        assert space.full_size == space.size == len(specs) == 6
        # Slowest-varying axis first: workload, then machine.
        assert [s.workload for s in specs[:2]] == ["spec.gzip"] * 2
        assert [s.machine for s in specs[:2]] == ["itanium2", "pentium4"]

    def test_specs_carry_every_axis_value(self):
        space = SweepSpace(workloads=WORKLOADS, seeds=(7, 8),
                           interval_instructions=(2_000_000, 5_000_000))
        specs = space.specs()
        assert {s.seed for s in specs} == {7, 8}
        assert {s.interval_instructions for s in specs} == \
            {2_000_000, 5_000_000}
        assert {s.workload for s in specs} == set(WORKLOADS)

    def test_key_covers_every_knob(self):
        base = SweepSpace(workloads=WORKLOADS)
        assert base.key != SweepSpace(workloads=WORKLOADS, k_max=4).key
        assert base.key != SweepSpace(workloads=WORKLOADS, limit=2).key
        assert base.key != SweepSpace(workloads=WORKLOADS[:2]).key


class TestSubsample:
    def test_limit_is_deterministic_subset(self):
        full = SweepSpace(workloads=WORKLOADS, seeds=(1, 2, 3, 4))
        limited = SweepSpace(workloads=WORKLOADS, seeds=(1, 2, 3, 4),
                             limit=5)
        full_keys = [s.key for s in full.specs()]
        limited_keys = [s.key for s in limited.specs()]
        assert len(limited_keys) == limited.size == 5
        assert set(limited_keys) <= set(full_keys)
        # Kept points stay in canonical product order.
        positions = [full_keys.index(k) for k in limited_keys]
        assert positions == sorted(positions)
        assert limited_keys == [s.key for s in limited.specs()]

    def test_sample_seed_changes_the_subset(self):
        kwargs = dict(workloads=WORKLOADS, seeds=(1, 2, 3, 4), limit=4)
        one = SweepSpace(sample_seed=0, **kwargs)
        two = SweepSpace(sample_seed=1, **kwargs)
        assert one.key != two.key
        assert [s.key for s in one.specs()] != [s.key for s in two.specs()]

    def test_limit_at_or_above_full_size_keeps_everything(self):
        space = SweepSpace(workloads=WORKLOADS, limit=1000)
        assert space.size == space.full_size
        assert len(space.specs()) == space.full_size


class TestValidation:
    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="workload"):
            SweepSpace(workloads=())
        with pytest.raises(ValueError, match="seeds"):
            SweepSpace(workloads=WORKLOADS, seeds=())

    def test_rejects_unknown_machine_and_scale(self):
        with pytest.raises(ValueError, match="machines"):
            SweepSpace(workloads=WORKLOADS, machines=("cray-1",))
        with pytest.raises(ValueError, match="scale"):
            SweepSpace(workloads=WORKLOADS, scale="huge")

    def test_rejects_folds_beyond_intervals(self):
        with pytest.raises(ValueError, match="folds"):
            SweepSpace(workloads=WORKLOADS, n_intervals=3, folds=4)

    def test_round_trips_through_canonical(self):
        space = SweepSpace(workloads=WORKLOADS, seeds=(7, 8), limit=3)
        assert SweepSpace.from_dict(space.canonical()) == space


class TestDefaultSpace:
    def test_covers_the_whole_registry(self):
        space = default_space()
        assert space.full_size == len(workload_names()) * 3 * 3 * 3
        assert space.interval_instructions == DEFAULT_INTERVALS
        assert space.full_size >= 1000  # the fleet-scale floor
