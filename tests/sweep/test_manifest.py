"""Shard layout, manifest round-trips, and torn-partial rejection."""

import json

import pytest

from repro.sweep import SweepManifest, SweepStateError, shard_bounds
from repro.sweep.manifest import (MANIFEST_NAME, load_manifest,
                                  read_partial, write_partial)


class TestShardBounds:
    def test_contiguous_cover(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_near_equal_sizes(self):
        for total in (1, 7, 100, 1350):
            for shards in (1, 3, 8, 64):
                bounds = shard_bounds(total, shards)
                sizes = [hi - lo for lo, hi in bounds]
                assert sum(sizes) == total
                assert max(sizes) - min(sizes) <= 1
                assert bounds[0][0] == 0 and bounds[-1][1] == total
                assert all(bounds[i][1] == bounds[i + 1][0]
                           for i in range(len(bounds) - 1))

    def test_more_shards_than_points_clamps(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]
        assert shard_bounds(0, 4) == [(0, 0)]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)


ROWS = [[0, 0.5, 1.0, 0.1, 0.05, 3, 12, 4, 0],
        [1, 0.6, 1.1, 0.2, 0.08, 2, 12, 4, 1]]


class TestPartials:
    def test_round_trip(self, tmp_path):
        name = write_partial(tmp_path, 0, 0, 2, ROWS)
        assert read_partial(tmp_path, name, 0, 0, 2) == ROWS

    def test_row_count_mismatch_refused_at_write(self, tmp_path):
        with pytest.raises(ValueError, match="rows"):
            write_partial(tmp_path, 0, 0, 3, ROWS)

    def test_torn_partial_reads_as_not_done(self, tmp_path):
        name = write_partial(tmp_path, 0, 0, 2, ROWS)
        path = tmp_path / name
        path.write_text(path.read_text()[:-20], encoding="utf-8")
        assert read_partial(tmp_path, name, 0, 0, 2) is None

    def test_wrong_shard_or_bounds_reads_as_not_done(self, tmp_path):
        name = write_partial(tmp_path, 0, 0, 2, ROWS)
        assert read_partial(tmp_path, name, 1, 0, 2) is None
        assert read_partial(tmp_path, name, 0, 0, 3) is None
        assert read_partial(tmp_path, "shards/none.json", 0, 0, 2) is None


class TestManifest:
    def manifest(self):
        return SweepManifest(space={"kind": "sweep-space"}, space_key="a" * 64,
                             n_points=10, bounds=shard_bounds(10, 3),
                             completed={1: "shards/shard-0001.json"})

    def test_save_load_round_trip(self, tmp_path):
        manifest = self.manifest()
        manifest.save(tmp_path)
        loaded = load_manifest(tmp_path)
        assert loaded == manifest
        assert loaded.n_shards == 3

    def test_fresh_dir_has_no_manifest(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_corrupt_manifest_is_an_error_not_a_recompute(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(SweepStateError, match="unreadable"):
            load_manifest(tmp_path)

    def test_newer_schema_refused(self, tmp_path):
        data = self.manifest().to_dict()
        data["schema"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(data),
                                              encoding="utf-8")
        with pytest.raises(SweepStateError, match="newer"):
            load_manifest(tmp_path)

    def test_atomic_save_leaves_no_tmp(self, tmp_path):
        self.manifest().save(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_NAME]
