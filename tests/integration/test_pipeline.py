"""End-to-end integration tests: workload -> sampler -> EIPVs -> quadrant.

One representative workload per quadrant runs through the entire paper
pipeline and must land where the paper puts it.  Server workloads run at
TINY scale to keep the suite fast; Q13 needs the DEFAULT scale and a
longer run for its phase structure to be learnable (as in the paper,
where Q13 runs for 538 s).
"""

import numpy as np
import pytest

from repro.core import Quadrant, analyze_predictability
from repro.experiments.common import RunConfig, collect
from repro.sampling import select_technique
from repro.trace import build_per_thread_eipvs
from repro.workloads.scale import DEFAULT, TINY


def analyze(name, n_intervals, scale=TINY, seed=7, k_max=30):
    trace, dataset = collect(RunConfig(name, n_intervals=n_intervals,
                                       seed=seed, scale=scale))
    return trace, dataset, analyze_predictability(dataset, k_max=k_max,
                                                  seed=seed)


class TestQuadrantPlacement:
    def test_odbc_lands_in_q1(self):
        _, dataset, result = analyze("odbc", 40)
        assert result.quadrant is Quadrant.Q1
        assert result.cpi_variance <= 0.01
        assert result.re_kopt > 0.15

    def test_art_lands_in_q4(self):
        _, _, result = analyze("spec.art", 40)
        assert result.quadrant is Quadrant.Q4
        assert result.explained_fraction > 0.9

    def test_equake_lands_in_q2(self):
        _, _, result = analyze("spec.equake", 40)
        assert result.quadrant is Quadrant.Q2

    def test_q18_lands_in_q3(self):
        _, _, result = analyze("odbh.q18", 60)
        assert result.quadrant is Quadrant.Q3
        assert result.cpi_variance > 0.01

    @pytest.mark.slow
    def test_q13_lands_in_q4_at_default_scale(self):
        _, _, result = analyze("odbh.q13", 90, scale=DEFAULT, seed=11,
                               k_max=50)
        assert result.quadrant is Quadrant.Q4
        assert result.re_kopt <= 0.15


class TestPipelineCoherence:
    def test_trace_and_dataset_agree(self):
        trace, dataset, _ = analyze("spec.gzip", 30)
        samples_per_interval = (dataset.interval_instructions
                                // trace.sample_period)
        used = dataset.n_intervals * samples_per_interval
        assert used <= len(trace)
        # Interval CPI averages bound the sample CPI range.
        assert dataset.cpis.min() >= trace.cpis.min() - 1e-9
        assert dataset.cpis.max() <= trace.cpis.max() + 1e-9

    def test_per_thread_separation_runs_on_server_workload(self):
        trace, dataset, merged = analyze("odbc", 40)
        per_thread = build_per_thread_eipvs(trace,
                                            dataset.interval_instructions)
        assert per_thread.n_intervals >= dataset.n_intervals // 2
        threaded = analyze_predictability(per_thread, k_max=20, seed=7)
        # Paper: separation helps only minimally; stays unpredictable.
        assert threaded.re_kopt > 0.5

    def test_selector_recommends_phase_based_for_art(self):
        _, dataset, _ = analyze("spec.art", 40)
        recommendation = select_technique(dataset, k_max=20, seed=7)
        assert recommendation.technique == "phase_based"

    def test_seeded_pipeline_is_reproducible(self):
        _, d1, r1 = analyze("spec.gcc", 30, seed=13)
        _, d2, r2 = analyze("spec.gcc", 30, seed=13)
        assert np.array_equal(d1.matrix, d2.matrix)
        assert r1.re_kopt == pytest.approx(r2.re_kopt)
