"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "odbc"])
        assert args.workload == "odbc"
        assert args.seed == 11
        assert args.scale == "default"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "odbc", "--scale",
                                       "huge"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_runtime_flags(self):
        args = build_parser().parse_args(
            ["census", "odbc", "--jobs", "4", "--cache-dir", "/tmp/c",
             "--no-cache", "--timeout", "30"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True
        assert args.timeout == 30.0

    def test_runtime_flag_defaults(self):
        args = build_parser().parse_args(["analyze", "odbc"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.timeout is None
        assert args.shm is True
        assert args.trace_store is None

    def test_no_shm_flag(self):
        args = build_parser().parse_args(["analyze", "odbc", "--no-shm"])
        assert args.shm is False
        args = build_parser().parse_args(["census", "odbc", "--shm"])
        assert args.shm is True

    def test_trace_store_flag(self):
        args = build_parser().parse_args(
            ["analyze", "odbc", "--trace-store", "/tmp/store"])
        assert args.trace_store == "/tmp/store"

    def test_experiment_help_lists_registry_ids(self):
        from repro.experiments.runner import EXPERIMENTS, experiment_ids
        ids = experiment_ids()
        assert set(ids) == set(EXPERIMENTS)
        # The help is derived from the registry, so absent ids (e11, e12)
        # must not be advertised.
        sub = [a for a in build_parser()._actions
               if getattr(a, "choices", None)
               and "experiment" in a.choices]
        text = sub[0].choices["experiment"].format_help()
        for exp_id in ids:
            assert exp_id in text
        assert "e11" not in text
        assert "e12" not in text

    def test_experiment_unknown_id_is_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "e11"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown experiment id(s): e11" in err
        assert "e10" in err  # the real registry is listed

    def test_experiment_ids_are_case_insensitive(self):
        args = build_parser().parse_args(["experiment", "E1", "e8"])
        assert args.ids == ["e1", "e8"]


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "odbc" in out
        assert "spec.mcf" in out

    def test_analyze_runs_tiny(self, capsys):
        code = main(["analyze", "spec.gzip", "--intervals", "12",
                     "--k-max", "5", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended sampling" in out
        assert "Q-" in out

    def test_census_subset(self, capsys):
        code = main(["census", "spec.gzip", "--k-max", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "quadrant" in out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        out = capsys.readouterr().out
        assert "MATCHES Figure 1" in out


class TestRuntimeCommands:
    def test_census_serial_parallel_and_warm_cache_identical(
            self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["census", "spec.gzip", "spec.art", "--k-max", "5"]
        assert main(argv + ["--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--cache-dir", cache_dir]) == 0
        parallel = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert serial == parallel == captured.out
        assert "2 cache hits (100%)" in captured.err

    def test_analyze_warm_cache_identical(self, capsys, tmp_path):
        argv = ["analyze", "spec.gzip", "--intervals", "12", "--k-max", "5",
                "--scale", "tiny", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert cold == captured.out
        assert "1 cache hits (100%)" in captured.err

    def test_analyze_jobs_output_identical(self, capsys):
        """--jobs fans out the CV folds; stdout stays byte-identical."""
        from repro.core import cross_validation

        argv = ["analyze", "spec.gzip", "--intervals", "12", "--k-max", "5",
                "--scale", "tiny", "--no-cache"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        fanned = capsys.readouterr().out
        assert serial == fanned
        # The CLI restores the process-wide fold-parallelism default.
        assert cross_validation._DEFAULT_CV_JOBS == 1

    def test_analyze_shm_output_identical(self, capsys):
        """The zero-copy shm transport changes no output byte at jobs=4."""
        argv = ["analyze", "spec.gzip", "--intervals", "12", "--k-max", "5",
                "--scale", "tiny", "--no-cache"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4", "--shm"]) == 0
        via_shm = capsys.readouterr().out
        assert main(argv + ["--jobs", "4", "--no-shm"]) == 0
        via_pickle = capsys.readouterr().out
        assert serial == via_shm == via_pickle

    def test_census_shm_output_identical(self, capsys):
        argv = ["census", "spec.gzip", "spec.art", "--k-max", "5",
                "--no-cache"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4", "--shm"]) == 0
        via_shm = capsys.readouterr().out
        assert serial == via_shm

    def test_analyze_trace_store_output_identical(self, capsys, tmp_path):
        """--trace-store streams collection to disk; the analysis output
        is byte-identical, both when collecting and when reusing."""
        store = str(tmp_path / "store")
        argv = ["analyze", "spec.gzip", "--intervals", "12", "--k-max", "5",
                "--scale", "tiny", "--no-cache"]
        assert main(argv) == 0
        in_memory = capsys.readouterr().out
        assert main(argv + ["--trace-store", store]) == 0
        collected = capsys.readouterr()
        assert "collected" in collected.err
        assert main(argv + ["--trace-store", store, "--jobs", "4"]) == 0
        reused = capsys.readouterr()
        assert "reused" in reused.err
        assert in_memory == collected.out == reused.out
        assert (tmp_path / "store" / "header.json").is_file()

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        argv = ["analyze", "spec.gzip", "--intervals", "12", "--k-max", "5",
                "--scale", "tiny", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(tmp_path) in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # Three object entries (collect + eipv stage results + the
        # analysis) and two artifacts (the trace and the EIPV dataset).
        assert "removed 3 cached result(s) and 2 stage artifact(s)" in out

    def test_no_cache_creates_no_directories(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["analyze", "spec.gzip", "--intervals", "12",
                     "--k-max", "5", "--scale", "tiny", "--no-cache",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert not cache_dir.exists()


ANALYZE_TINY = ["analyze", "spec.gzip", "--intervals", "12", "--k-max", "5",
                "--scale", "tiny", "--no-cache"]


class TestObservabilityCommands:
    def test_profile_prints_per_stage_breakdown(self, capsys):
        code = main(["profile", "spec.gzip", "--intervals", "12",
                     "--k-max", "5", "--scale", "tiny", "--top", "3"])
        assert code == 0
        captured = capsys.readouterr()
        assert "per-stage breakdown" in captured.out
        assert "pipeline.collect" in captured.out
        assert "cv.fold" in captured.out
        assert "top 3 slowest spans" in captured.out
        assert captured.err == ""

    def test_profile_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "no.such.workload"])
        assert excinfo.value.code == 2
        assert "unknown workload(s)" in capsys.readouterr().err

    def test_profile_writes_trace(self, capsys, tmp_path):
        from repro.obs import read_trace
        trace = tmp_path / "profile.jsonl"
        assert main(["profile", "spec.gzip", "--intervals", "12",
                     "--k-max", "5", "--scale", "tiny",
                     "--trace-out", str(trace)]) == 0
        assert f"trace: {trace}" in capsys.readouterr().err
        events = read_trace(trace)
        assert events[0]["type"] == "trace_meta"
        assert events[0]["command"] == "profile"
        assert any(e.get("path") == "job/analyze" for e in events)

    def test_analyze_stdout_identical_with_tracing(self, capsys, tmp_path):
        from repro import obs
        from repro.obs import read_trace
        assert main(ANALYZE_TINY) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "analyze.jsonl"
        assert main(ANALYZE_TINY + ["--trace-out", str(trace)]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain  # observability never touches stdout
        assert "trace:" in captured.err
        assert not obs.tracing_enabled()  # trace state never leaks
        events = read_trace(trace)
        assert events[0] == {"type": "trace_meta", "schema_version": 1,
                             "command": "analyze"}
        roots = [e for e in events if e.get("depth") == 0]
        assert [r["path"] for r in roots] == ["job"]

    def test_census_parallel_stdout_identical_with_tracing(
            self, capsys, tmp_path):
        from repro.obs import read_trace
        argv = ["census", "spec.gzip", "spec.art", "--k-max", "5",
                "--no-cache", "--jobs", "2"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "census.jsonl"
        assert main(argv + ["--trace-out", str(trace)]) == 0
        assert capsys.readouterr().out == plain
        roots = [e for e in read_trace(trace) if e.get("depth") == 0]
        # One merged job tree per workload, in submission order.
        assert [r["attrs"]["workload"] for r in roots] == \
            ["spec.gzip", "spec.art"]


class TestSharedRuntimeSurface:
    """One parent parser feeds every work-running subcommand."""

    WORK_COMMANDS = ("analyze", "census", "experiment", "profile", "sweep")

    @staticmethod
    def _runtime_section(parser) -> str:
        blocks = parser.format_help().split("\n\n")
        sections = [b.strip() for b in blocks
                    if b.lstrip().startswith("runtime:")]
        assert len(sections) == 1
        # argparse wraps columns per-subparser (the widest flag differs,
        # and wrapping can split on hyphens), so compare the surface with
        # all whitespace stripped.
        return "".join(sections[0].split())

    def _subparsers(self):
        action = next(a for a in build_parser()._actions
                      if getattr(a, "choices", None)
                      and "analyze" in a.choices)
        return action.choices

    def test_runtime_help_identical_across_subcommands(self):
        choices = self._subparsers()
        sections = {name: self._runtime_section(choices[name])
                    for name in self.WORK_COMMANDS}
        reference = sections["analyze"]
        for name, section in sections.items():
            assert section == reference, f"{name} drifted from analyze"

    def test_runtime_defaults_identical_across_subcommands(self):
        flags = ("jobs", "cache_dir", "no_cache", "timeout", "shm",
                 "dispatch", "trace_out")
        positional = {"analyze": ["odbc"], "census": [],
                      "experiment": ["e1"], "profile": ["odbc"],
                      "sweep": []}
        seen = {}
        for name in self.WORK_COMMANDS:
            args = build_parser().parse_args([name] + positional[name])
            seen[name] = {flag: getattr(args, flag) for flag in flags}
        assert all(values == seen["analyze"] for values in seen.values())

    def test_main_restores_runtime_options(self, tmp_path, capsys):
        """An in-process ``main()`` must not leak its runtime policy
        (notably the CLI's adaptive dispatch default) into later
        library calls — the library default stays ``parallel``."""
        from repro.runtime import options as runtime_options
        before = runtime_options.current()
        assert before.dispatch == "parallel"
        rc = main(["analyze", "spec.gzip", "--intervals", "12",
                   "--k-max", "3", "--scale", "tiny",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        capsys.readouterr()
        assert runtime_options.current() == before


class TestSweepCommand:
    SWEEP_ARGS = ["sweep", "spec.gzip", "spec.art",
                  "--seeds", "7", "--interval-sizes", "10000000",
                  "--machines", "itanium2"]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workloads == []
        assert args.seeds == [11, 12, 13]
        assert args.scale == "tiny"
        assert args.jobs == 1  # shared runtime surface

    def test_unknown_workload_is_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "no.such.workload"])
        assert excinfo.value.code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_sweep_runs_and_resumes(self, capsys, tmp_path):
        argv = self.SWEEP_ARGS + ["--shards", "2",
                                  "--sweep-dir", str(tmp_path / "sweep"),
                                  "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert first.out.startswith("sweep report\n")
        assert "2 points" in first.err
        # Rerun: both shards replay from their partials, same stdout.
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "2 shards (2 resumed), 0 cached, 0 executed" in second.err

    def test_stop_after_exits_3_then_resumes(self, capsys, tmp_path):
        argv = self.SWEEP_ARGS + ["--shards", "2",
                                  "--sweep-dir", str(tmp_path / "sweep"),
                                  "--cache-dir", str(tmp_path / "cache")]
        assert main(argv + ["--stop-after", "1"]) == 3
        killed = capsys.readouterr()
        assert killed.out == ""
        assert "rerun to resume" in killed.err
        assert main(argv) == 0
        resumed = capsys.readouterr()
        assert resumed.out.startswith("sweep report\n")
