"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "odbc"])
        assert args.workload == "odbc"
        assert args.seed == 11
        assert args.scale == "default"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "odbc", "--scale",
                                       "huge"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "odbc" in out
        assert "spec.mcf" in out

    def test_analyze_runs_tiny(self, capsys):
        code = main(["analyze", "spec.gzip", "--intervals", "12",
                     "--k-max", "5", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended sampling" in out
        assert "Q-" in out

    def test_census_subset(self, capsys):
        code = main(["census", "spec.gzip", "--k-max", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "quadrant" in out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        out = capsys.readouterr().out
        assert "MATCHES Figure 1" in out
