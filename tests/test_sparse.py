"""Tests for the minimal CSR matrix (repro.sparse)."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, as_dense, is_sparse


def _random_dense(rng, n_rows=7, n_cols=11, density=0.3, dtype=np.int32):
    dense = rng.integers(1, 9, size=(n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0
    return dense.astype(dtype)


class TestRoundTrip:
    def test_from_dense_toarray_exact(self):
        rng = np.random.default_rng(0)
        for trial in range(10):
            dense = _random_dense(rng)
            csr = CSRMatrix.from_dense(dense)
            assert csr.shape == dense.shape
            assert csr.nnz == int((dense != 0).sum())
            np.testing.assert_array_equal(csr.toarray(), dense)
            assert csr.toarray().dtype == dense.dtype

    def test_all_zero_and_empty_rows(self):
        dense = np.zeros((4, 6), dtype=np.int32)
        dense[2, 3] = 5
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 1
        np.testing.assert_array_equal(csr.toarray(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.arange(5))

    def test_len_and_ndim(self):
        csr = CSRMatrix.from_dense(np.eye(3, dtype=np.int32))
        assert len(csr) == 3
        assert csr.ndim == 2
        assert csr.dtype == np.int32


class TestFromCodes:
    def test_matches_dense_bincount(self):
        """from_codes is the sparse analogue of the dense histogram."""
        rng = np.random.default_rng(1)
        n_rows, n_cols = 9, 13
        rows = rng.integers(0, n_rows, size=500)
        cols = rng.integers(0, n_cols, size=500)
        dense = np.bincount(rows * n_cols + cols,
                            minlength=n_rows * n_cols
                            ).reshape(n_rows, n_cols).astype(np.int32)
        csr = CSRMatrix.from_codes(rows, cols, (n_rows, n_cols))
        np.testing.assert_array_equal(csr.toarray(), dense)
        assert csr.dtype == np.int32

    def test_empty_codes(self):
        csr = CSRMatrix.from_codes(np.empty(0, np.int64),
                                   np.empty(0, np.int64), (3, 4))
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.toarray(), np.zeros((3, 4)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_codes(np.arange(3), np.arange(2), (4, 4))


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 1]), indices=np.array([0]),
                      data=np.array([1]), shape=(2, 2))

    def test_indices_data_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 1, 2]), indices=np.array([0]),
                      data=np.array([1, 2]), shape=(2, 2))

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 1, 1]), indices=np.array([0, 1]),
                      data=np.array([1, 2]), shape=(2, 2))

    def test_column_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 1]), indices=np.array([5]),
                      data=np.array([1]), shape=(1, 2))


class TestReductionsAndTriplets:
    def test_sums_match_dense(self):
        rng = np.random.default_rng(2)
        dense = _random_dense(rng)
        csr = CSRMatrix.from_dense(dense)
        assert csr.sum() == dense.sum()
        np.testing.assert_array_equal(csr.sum(axis=0), dense.sum(axis=0))
        np.testing.assert_array_equal(csr.sum(axis=1), dense.sum(axis=1))
        assert csr.sum(axis=0).dtype == np.int64
        with pytest.raises(ValueError):
            csr.sum(axis=2)

    def test_triplets_in_nonzero_order(self):
        """Triplet export order must equal np.nonzero order — the tree
        relies on this for sparse/dense bit-identity."""
        rng = np.random.default_rng(3)
        dense = _random_dense(rng)
        csr = CSRMatrix.from_dense(dense)
        rows, cols, vals = csr.triplets()
        exp_rows, exp_cols = np.nonzero(dense)
        np.testing.assert_array_equal(rows, exp_rows)
        np.testing.assert_array_equal(cols, exp_cols)
        np.testing.assert_array_equal(vals, dense[exp_rows, exp_cols])


class TestSlicing:
    def test_row_subset_mask_and_order(self):
        rng = np.random.default_rng(4)
        dense = _random_dense(rng, n_rows=10)
        csr = CSRMatrix.from_dense(dense)
        mask = rng.random(10) < 0.5
        np.testing.assert_array_equal(csr.row_subset(mask).toarray(),
                                      dense[mask])
        order = rng.permutation(10)
        np.testing.assert_array_equal(csr.row_subset(order).toarray(),
                                      dense[order])
        repeated = np.array([3, 3, 0])
        np.testing.assert_array_equal(csr.row_subset(repeated).toarray(),
                                      dense[repeated])

    def test_select_columns(self):
        rng = np.random.default_rng(5)
        dense = _random_dense(rng, n_cols=12)
        csr = CSRMatrix.from_dense(dense)
        keep = np.array([0, 3, 7, 11])
        np.testing.assert_array_equal(csr.select_columns(keep).toarray(),
                                      dense[:, keep])

    def test_select_columns_empty_keep(self):
        csr = CSRMatrix.from_dense(np.ones((3, 4), dtype=np.int32))
        out = csr.select_columns(np.empty(0, np.int64))
        assert out.shape == (3, 0)
        assert out.nnz == 0

    def test_select_columns_requires_sorted_unique(self):
        csr = CSRMatrix.from_dense(np.ones((2, 4), dtype=np.int32))
        with pytest.raises(ValueError):
            csr.select_columns(np.array([3, 1]))
        with pytest.raises(ValueError):
            csr.select_columns(np.array([1, 1]))

    def test_getitem_forms(self):
        rng = np.random.default_rng(6)
        dense = _random_dense(rng)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr[np.array([1, 4])].toarray(),
                                      dense[[1, 4]])
        np.testing.assert_array_equal(csr[:, np.array([2, 5])].toarray(),
                                      dense[:, [2, 5]])
        with pytest.raises(TypeError):
            csr[1:3, np.array([0])]


class TestVstack:
    def test_matches_dense_vstack(self):
        rng = np.random.default_rng(7)
        blocks = [_random_dense(rng, n_rows=r) for r in (3, 1, 5)]
        stacked = CSRMatrix.vstack(
            [CSRMatrix.from_dense(b) for b in blocks])
        np.testing.assert_array_equal(stacked.toarray(), np.vstack(blocks))

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            CSRMatrix.vstack([])
        a = CSRMatrix.from_dense(np.ones((2, 3), dtype=np.int32))
        b = CSRMatrix.from_dense(np.ones((2, 4), dtype=np.int32))
        with pytest.raises(ValueError):
            CSRMatrix.vstack([a, b])


class TestHelpers:
    def test_is_sparse_and_as_dense(self):
        dense = np.eye(3, dtype=np.int32)
        csr = CSRMatrix.from_dense(dense)
        assert is_sparse(csr) and not is_sparse(dense)
        np.testing.assert_array_equal(as_dense(csr), dense)
        assert as_dense(dense) is not None
        np.testing.assert_array_equal(as_dense(dense), dense)
