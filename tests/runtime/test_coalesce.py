"""Tests for the in-flight request coalescer."""

import threading
import time

import pytest

from repro.runtime.coalesce import (CoalescedFailure, CoalesceTimeout,
                                    JobCoalescer)
from repro.runtime.metrics import MetricsRegistry


def _wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestCoalescing:
    def test_thundering_herd_computes_once(self):
        metrics = MetricsRegistry()
        coalescer = JobCoalescer(metrics=metrics)
        calls = []
        started = threading.Event()
        release = threading.Event()

        def compute():
            calls.append(threading.get_ident())
            started.set()
            release.wait(10)
            return {"value": 42}

        n = 8
        results = [None] * n

        def worker(i):
            results[i] = coalescer.run("k", compute, wait_timeout=10)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        threads[0].start()
        assert started.wait(5)
        for thread in threads[1:]:
            thread.start()
        assert _wait_until(lambda: coalescer.waiters() == n - 1)
        assert coalescer.in_flight() == 1
        release.set()
        for thread in threads:
            thread.join(10)

        assert len(calls) == 1
        payloads = [payload for payload, _ in results]
        # Followers receive the very same object the leader computed.
        assert all(payload is payloads[0] for payload in payloads)
        assert sum(leader for _, leader in results) == 1
        assert metrics.count("coalesce.leader") == 1
        assert metrics.count("coalesce.follower") == n - 1
        assert coalescer.in_flight() == 0
        assert coalescer.waiters() == 0

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = JobCoalescer(metrics=MetricsRegistry())
        assert coalescer.run("a", lambda: 1) == (1, True)
        assert coalescer.run("b", lambda: 2) == (2, True)

    def test_sequential_runs_each_lead(self):
        metrics = MetricsRegistry()
        coalescer = JobCoalescer(metrics=metrics)
        coalescer.run("k", lambda: 1)
        coalescer.run("k", lambda: 2)
        assert metrics.count("coalesce.leader") == 2
        assert metrics.count("coalesce.follower") == 0


class TestFailures:
    def test_leader_failure_reaches_followers_as_text(self):
        metrics = MetricsRegistry()
        coalescer = JobCoalescer(metrics=metrics)
        started = threading.Event()
        release = threading.Event()
        outcome = {}

        def compute():
            started.set()
            release.wait(10)
            raise ValueError("boom from the leader")

        def leader():
            try:
                coalescer.run("k", compute)
            except ValueError as exc:
                outcome["leader"] = str(exc)

        def follower():
            try:
                coalescer.run("k", lambda: None, wait_timeout=10)
            except CoalescedFailure as exc:
                outcome["follower"] = str(exc)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert started.wait(5)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        assert _wait_until(lambda: coalescer.waiters() == 1)
        release.set()
        leader_thread.join(10)
        follower_thread.join(10)

        # The leader re-raises its own exception unchanged...
        assert outcome["leader"] == "boom from the leader"
        # ...while followers get the formatted traceback text.
        assert "ValueError: boom from the leader" in outcome["follower"]
        assert metrics.count("coalesce.failed") == 1

    def test_failed_flight_is_cleared_for_retry(self):
        coalescer = JobCoalescer(metrics=MetricsRegistry())
        with pytest.raises(RuntimeError):
            coalescer.run("k", lambda: (_ for _ in ()).throw(
                RuntimeError("once")))
        assert coalescer.in_flight() == 0
        assert coalescer.run("k", lambda: "fine") == ("fine", True)

    def test_follower_timeout(self):
        metrics = MetricsRegistry()
        coalescer = JobCoalescer(metrics=metrics)
        started = threading.Event()
        release = threading.Event()

        def compute():
            started.set()
            release.wait(10)
            return "late"

        leader_thread = threading.Thread(
            target=lambda: coalescer.run("k", compute))
        leader_thread.start()
        assert started.wait(5)
        with pytest.raises(CoalesceTimeout):
            coalescer.run("k", lambda: None, wait_timeout=0.05)
        assert metrics.count("coalesce.wait_timeout") == 1
        release.set()
        leader_thread.join(10)
