"""Job hashing, result serialization, and cache robustness."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.predictability import analyze_predictability
from repro.experiments.common import RunConfig, collect
from repro.runtime.cache import (
    SCHEMA_VERSION,
    CacheStats,
    NullCache,
    ResultCache,
    default_cache_dir,
)
from repro.runtime.jobs import JobResult, JobSpec, execute_job
from repro.workloads.scale import TINY, get_scale

TINY_SPEC = JobSpec(workload="spec.gzip", n_intervals=12, seed=7,
                    scale="tiny", k_max=5)


class TestJobSpec:
    def test_key_is_deterministic_across_instances(self):
        a = JobSpec(workload="odbc", n_intervals=60, seed=11)
        b = JobSpec(workload="odbc", n_intervals=60, seed=11)
        assert a is not b
        assert a.key == b.key
        assert a.key == a.key

    def test_key_is_sha256_hex(self):
        key = TINY_SPEC.key
        assert len(key) == 64
        int(key, 16)  # hex-parseable

    @pytest.mark.parametrize("change", [
        {"workload": "spec.mcf"},
        {"n_intervals": 13},
        {"seed": 8},
        {"machine": "xeon"},
        {"scale": "default"},
        {"k_max": 6},
        {"folds": 5},
        {"min_leaf": 2},
        {"code_version": "0.0.0-other"},
    ])
    def test_any_field_change_changes_the_key(self, change):
        changed = JobSpec(**{**TINY_SPEC.canonical(), **change})
        assert changed.key != TINY_SPEC.key

    def test_dict_round_trip(self):
        assert JobSpec.from_dict(TINY_SPEC.canonical()) == TINY_SPEC

    def test_run_config_round_trip(self):
        config = RunConfig("odbh.q13", n_intervals=24, seed=3,
                           machine="pentium4", scale=TINY)
        spec = JobSpec.from_run_config(config, k_max=9)
        assert spec.to_run_config() == config
        assert spec.k_max == 9

    def test_canonical_is_json_safe(self):
        json.dumps(TINY_SPEC.canonical())

    def test_key_is_a_property_not_a_method(self):
        # The public dedup identity: cache, coalescer and manifests all
        # read `spec.key`; a stale call-style would hash the bound method.
        assert isinstance(TINY_SPEC.key, str)

    def test_equality_hash_key_round_trip(self):
        # Equal specs are interchangeable everywhere a spec is a dict key
        # or a dedup identity: ==, hash() and .key must all agree, and
        # the dict round-trip must preserve all three.
        twin = JobSpec.from_dict(TINY_SPEC.canonical())
        assert twin == TINY_SPEC
        assert hash(twin) == hash(TINY_SPEC)
        assert twin.key == TINY_SPEC.key
        assert len({twin, TINY_SPEC}) == 1
        other = JobSpec(**{**TINY_SPEC.canonical(), "seed": 8})
        assert other != TINY_SPEC
        assert other.key != TINY_SPEC.key

    def test_key_is_cached_per_instance(self):
        spec = JobSpec(workload="odbc")
        assert spec.key is spec.key  # cached_property: one digest, reused


class TestJobResult:
    def test_execute_matches_direct_pipeline(self):
        job = execute_job(TINY_SPEC)
        _, dataset = collect(TINY_SPEC.to_run_config())
        direct = analyze_predictability(dataset, k_max=TINY_SPEC.k_max,
                                        seed=TINY_SPEC.seed)
        reconstructed = job.to_result()
        np.testing.assert_array_equal(reconstructed.curve.re,
                                      direct.curve.re)
        assert reconstructed.k_opt == direct.k_opt
        assert reconstructed.quadrant == direct.quadrant
        assert reconstructed.summary() == direct.summary()

    def test_json_round_trip_is_lossless(self):
        job = execute_job(TINY_SPEC)
        restored = JobResult.from_dict(json.loads(json.dumps(job.to_dict())))
        assert restored.re == job.re
        assert restored.re_kopt == job.re_kopt
        assert restored.cpi_variance == job.cpi_variance
        assert restored.to_result().summary() == job.to_result().summary()


class TestResultCache:
    def put_one(self, cache, key="k" * 64, payload=None):
        cache.put(key, payload if payload is not None else {"x": 1},
                  spec={"workload": "w"})
        return key

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache, payload={"re": [0.5, 0.25]})
        assert cache.get(key) == {"re": [0.5, 0.25]}

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("f" * 64) is None

    def test_garbage_json_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache)
        cache.entry_path(key).write_text("{not json at all", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.entry_path(key).exists()
        assert cache.stats().quarantined == 1

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache)
        path = cache.entry_path(key)
        path.write_text(path.read_text(encoding="utf-8")[:20],
                        encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats().quarantined == 1

    def test_stale_schema_version_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache)
        path = cache.entry_path(key)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["schema_version"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats().quarantined == 1

    def test_key_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache)
        other = "a" * 64
        path = cache.entry_path(key)
        cache.entry_path(other).parent.mkdir(parents=True, exist_ok=True)
        path.rename(cache.entry_path(other))
        assert cache.get(other) is None
        assert cache.stats().quarantined == 1

    def test_rewrite_after_quarantine_works(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache)
        cache.entry_path(key).write_text("garbage", encoding="utf-8")
        assert cache.get(key) is None
        self.put_one(cache, key, payload={"fixed": True})
        assert cache.get(key) == {"fixed": True}

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self.put_one(cache)
        leftovers = [p for p in cache.entry_path(key).parent.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            self.put_one(cache, key=f"{i:064x}")
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_enumeration_is_sorted_regardless_of_creation_order(
            self, tmp_path):
        # RL001 regression: glob()/iterdir() yield filesystem order,
        # which tracks creation order on most filesystems — create
        # entries shuffled and require sorted enumeration anyway.
        cache = ResultCache(tmp_path)
        keys = [f"{i:064x}" for i in (7, 1, 9, 3)]
        for key in keys:
            self.put_one(cache, key=key)
        cache.quarantine_dir.mkdir(parents=True)
        for name in ["zz.json", "aa.json", "mm.json"]:
            (cache.quarantine_dir / name).write_text("x", encoding="utf-8")
        cache.manifest_dir.mkdir(parents=True)
        for name in ["run-b.json", "run-a.json"]:
            (cache.manifest_dir / name).write_text("{}", encoding="utf-8")
        assert cache.entries() == sorted(cache.entries())
        assert [p.name for p in cache.entries()] \
            == sorted(f"{key}.json" for key in keys)
        assert [p.name for p in cache.quarantined()] \
            == ["aa.json", "mm.json", "zz.json"]
        assert [p.name for p in cache.manifests()] \
            == ["run-a.json", "run-b.json"]

    def test_clear_evicts_in_sorted_path_order(self, tmp_path,
                                               monkeypatch):
        cache = ResultCache(tmp_path)
        for i in (5, 2, 8):
            self.put_one(cache, key=f"{i:064x}")
        removed_order = []
        real_unlink = Path.unlink

        def recording_unlink(self, *args, **kwargs):
            removed_order.append(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", recording_unlink)
        assert cache.clear() == 3
        assert removed_order == sorted(removed_order)

    def test_cache_stats_cli_output_is_deterministic(self, tmp_path,
                                                     capsys):
        from repro.cli import main as cli_main
        cache = ResultCache(tmp_path)
        for i in (4, 0, 6):
            self.put_one(cache, key=f"{i:064x}")
        outputs = []
        for _ in range(2):
            assert cli_main(["cache", "stats", "--cache-dir",
                             str(tmp_path)]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "entries" in outputs[0]

    def test_stats_render_mentions_root(self, tmp_path):
        text = ResultCache(tmp_path).stats().render()
        assert str(tmp_path) in text
        assert "entries" in text

    def test_default_dir_respects_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().name == "repro"


def _race_writer(root: str, key: str, payload: dict, barrier,
                 rounds: int) -> None:
    """One racing process: rendezvous with its peer, then store ``key``
    repeatedly so the two writers genuinely overlap."""
    cache = ResultCache(Path(root))
    for _ in range(rounds):
        barrier.wait(timeout=30)
        cache.put(key, payload, spec={"who": "race"})


class TestConcurrentWriters:
    def test_same_key_race_leaves_one_valid_entry(self, tmp_path):
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
            barrier = ctx.Barrier(3)
        except (OSError, PermissionError, ValueError):
            pytest.skip("multiprocessing unavailable in this environment")
        key = "ab" * 32
        payload = {"answer": 42, "curve": [0.5, 0.25]}
        rounds = 25
        workers = [ctx.Process(target=_race_writer,
                               args=(str(tmp_path), key, payload, barrier,
                                     rounds))
                   for _ in range(2)]
        for worker in workers:
            worker.start()
        cache = ResultCache(tmp_path)
        for _ in range(rounds):
            barrier.wait(timeout=30)
            # Readers racing the writers must only ever see a complete
            # envelope or a miss — never garbage, never a quarantine.
            got = cache.get(key)
            assert got is None or got == payload
        for worker in workers:
            worker.join(30)
            assert worker.exitcode == 0

        # Exactly one valid entry for the key...
        assert cache.get(key) == payload
        assert [p.name for p in cache.entries()] == [f"{key}.json"]
        # ...no quarantine debris and no leaked temp files.
        assert cache.quarantined() == []
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestPrune:
    def put_one(self, cache: ResultCache, key: str) -> None:
        cache.put(key, {"k": key})

    def test_prune_evicts_to_the_bound_in_sorted_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in (7, 1, 4, 9):
            self.put_one(cache, f"{i:064x}")
        assert cache.prune(max_entries=2) == 2
        # Sorted-path eviction: the lexically-earliest entries go first.
        assert [p.name for p in cache.entries()] \
            == [f"{7:064x}.json", f"{9:064x}.json"]

    def test_prune_within_bound_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.put_one(cache, "aa" * 32)
        assert cache.prune(max_entries=5) == 0
        assert len(cache.entries()) == 1

    def test_prune_counts_into_metrics(self, tmp_path):
        from repro.runtime.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=metrics)
        for i in range(3):
            self.put_one(cache, f"{i:064x}")
        cache.prune(max_entries=1)
        assert metrics.count("cache.pruned") == 2


class TestNullCache:
    def test_never_hits_never_stores(self):
        cache = NullCache()
        assert cache.put("k", {"x": 1}) is None
        assert cache.get("k") is None
        assert cache.clear() == 0
        assert cache.stats() == CacheStats(root="(disabled)", entries=0,
                                           total_bytes=0, quarantined=0,
                                           manifests=0)


def test_get_scale_round_trips_spec_scales():
    for name in ("tiny", "default", "paper"):
        assert get_scale(name).name == name
