"""The persistent worker pool: warmth, self-healing, and clean exits.

Everything the warm pool promises is covered here: workers forked once
are reused across batches, a worker death mid-batch respawns the pool
and finishes the batch, task-count recycling retires long-lived workers,
the published-arena cache makes repeat analyses publish nothing, the
idle reaper and ``shutdown_default`` leave zero worker processes and
zero shm segments behind, and the adaptive dispatcher's cost model picks
serial exactly when parallel could only lose.
"""

import os
import threading
import time
from dataclasses import asdict, dataclass
from functools import cached_property
from typing import ClassVar

import numpy as np
import pytest

from repro.runtime import pool as pool_mod
from repro.runtime import shm
from repro.runtime.cache import NullCache
from repro.runtime.folds import run_parallel_folds, dataset_token
from repro.runtime.jobs import register_job_kind, spec_key
from repro.runtime.metrics import METRICS, MetricsRegistry
from repro.runtime.scheduler import run_jobs
from tests.runtime.test_folds import small_dataset


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test forks its own workers (so they inherit this module's
    job kind) and leaves nothing warm behind."""
    pool_mod.reset_default()
    yield
    pool_mod.reset_default()


# -- a minimal job kind whose workers can be told to die --------------------

@dataclass(frozen=True)
class ProbeSpec:
    """Reports the executing pid; ``mode="die"`` kills any pool worker
    it lands on (the parent, where ``parent_pid`` matches, survives)."""

    kind: ClassVar[str] = "pool_probe"

    tag: int
    parent_pid: int
    mode: str = "ok"

    def canonical(self) -> dict:
        return asdict(self)

    @cached_property
    def key(self) -> str:
        return spec_key(self.canonical())


@dataclass(frozen=True)
class ProbeResult:
    key: str
    pid: int
    timings: dict = None
    spans: tuple = ()

    def to_dict(self) -> dict:
        return {"key": self.key, "pid": self.pid}

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeResult":
        return cls(key=data["key"], pid=data["pid"])


def _execute_probe(spec: ProbeSpec) -> ProbeResult:
    if spec.mode == "die" and os.getpid() != spec.parent_pid:
        os._exit(1)
    if spec.mode == "sleep" and os.getpid() != spec.parent_pid:
        time.sleep(0.5)
    return ProbeResult(key=spec.key, pid=os.getpid())


register_job_kind("pool_probe", execute=_execute_probe,
                  spec_from_dict=lambda d: ProbeSpec(**d),
                  result_from_dict=ProbeResult.from_dict)


def probes(n, start=0, mode="ok"):
    return [ProbeSpec(tag=start + i, parent_pid=os.getpid(), mode=mode)
            for i in range(n)]


def _counts(*names):
    return {name: METRICS.count(name) for name in names}


class TestWarmReuse:
    def test_second_batch_reuses_forked_workers(self):
        before = _counts("pool.spawns", "pool.warm_hits")
        first = run_jobs(probes(4), jobs=2, cache=NullCache())
        second = run_jobs(probes(4, start=10), jobs=2, cache=NullCache())
        pids = {o.result.pid for batch in (first, second) for o in batch}
        workers = {p for p in pids if p != os.getpid()}
        assert workers, "jobs never reached a pool worker"
        assert METRICS.count("pool.spawns") - before["pool.spawns"] == 1
        assert METRICS.count("pool.warm_hits") - before["pool.warm_hits"] == 1
        # Warm reuse means the second batch ran on the same forks.
        first_pids = {o.result.pid for o in first} - {os.getpid()}
        second_pids = {o.result.pid for o in second} - {os.getpid()}
        assert second_pids <= first_pids

    def test_arena_published_once_across_two_analyses(self):
        pytest.importorskip("multiprocessing.shared_memory")
        if not shm.shm_available():
            pytest.skip("POSIX shared memory unavailable")
        from repro.core.config import AnalysisConfig
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=5, folds=4, seed=3)
        before = _counts("pool.arena_published", "pool.arena_reused")
        first = run_parallel_folds(matrix, y, config, jobs=2, shm=True)
        second = run_parallel_folds(matrix, y, config, jobs=2, shm=True)
        np.testing.assert_array_equal(first, second)
        assert (METRICS.count("pool.arena_published")
                - before["pool.arena_published"]) == 1
        assert (METRICS.count("pool.arena_reused")
                - before["pool.arena_reused"]) >= 1


class TestSelfHealing:
    def test_worker_death_mid_batch_respawns_and_finishes(self):
        specs = probes(2) + probes(1, start=50, mode="die") + \
            probes(2, start=60)
        before = _counts("pool.respawns")
        outcomes = run_jobs(specs, jobs=2, cache=NullCache())
        assert all(o.ok for o in outcomes)
        # The kamikaze job was recomputed in the parent...
        by_tag = {o.spec.tag: o for o in outcomes}
        assert by_tag[50].result.pid == os.getpid()
        assert METRICS.count("pool.respawns") - before["pool.respawns"] >= 1
        # ...and the healed pool serves the next batch warm.
        after = run_jobs(probes(3, start=70), jobs=2, cache=NullCache())
        assert all(o.ok for o in after)

    def test_recycle_after_max_tasks_replaces_workers(self):
        metrics = MetricsRegistry()
        pool = pool_mod.WorkerPool(max_workers=2, max_tasks_per_child=1,
                                   metrics=metrics)
        try:
            first = run_jobs(probes(2), jobs=2, cache=NullCache(),
                             worker_pool=pool)
            second = run_jobs(probes(2, start=10), jobs=2,
                              cache=NullCache(), worker_pool=pool)
            first_pids = {o.result.pid for o in first} - {os.getpid()}
            second_pids = {o.result.pid for o in second} - {os.getpid()}
            assert first_pids and second_pids
            assert first_pids.isdisjoint(second_pids)
            assert metrics.count("pool.recycled") >= 1
            assert metrics.count("pool.spawns") == 2
        finally:
            pool.shutdown()
        assert pool.leaked_workers() == []

    def test_broken_pool_on_last_job_is_discarded_not_reused(self):
        # A break with no respawn after it (here: on the batch's last
        # job) must drop the executor; a warm-cached corpse would make
        # every later batch silently degrade to in-process.
        specs = probes(1) + probes(1, start=50, mode="die")
        outcomes = run_jobs(specs, jobs=2, cache=NullCache())
        assert all(o.ok for o in outcomes)
        assert not pool_mod.default_pool().is_warm
        after = run_jobs(probes(3, start=70), jobs=2, cache=NullCache())
        assert all(o.ok for o in after)
        worker_pids = {o.result.pid for o in after} - {os.getpid()}
        assert worker_pids, "next batch never reached a pool worker"

    def test_acquire_defers_grow_and_recycle_while_batches_inflight(self):
        # Growing or recycling tears the executor down, cancelling any
        # in-flight batch's futures — so acquire must serve the current
        # executor as-is until the pool is idle.
        metrics = MetricsRegistry()
        pool = pool_mod.WorkerPool(max_workers=4, max_tasks_per_child=1,
                                   metrics=metrics)
        try:
            first, fresh = pool.acquire(1)
            assert fresh
            pool.note_tasks(5)  # over the recycle budget
            second, fresh = pool.acquire(4)  # bigger, but not while busy
            assert second is first and not fresh
            assert metrics.count("pool.recycled") == 0
            pool.release()
            pool.release()
            third, fresh = pool.acquire(4)  # idle now: grow + recycle
            assert fresh and third is not first
            assert metrics.count("pool.recycled") == 1
            pool.release()
        finally:
            pool.shutdown()
        assert pool.leaked_workers() == []

    def test_cancelled_futures_recompute_in_process(self):
        # Another thread discarding the shared executor mid-batch
        # cancels our pending futures; CancelledError (a BaseException)
        # must recompute the job like a broken pool, not abort the batch.
        pool = pool_mod.WorkerPool(max_workers=1,
                                   metrics=MetricsRegistry())
        canceller = threading.Timer(0.15,
                                    lambda: pool.discard(wait=False))
        canceller.start()
        try:
            outcomes = run_jobs(probes(1, mode="sleep") + probes(1, start=10),
                                jobs=2, cache=NullCache(), worker_pool=pool)
        finally:
            canceller.cancel()
            pool.shutdown()
        assert all(o.ok for o in outcomes)
        # The discarded worker exits as soon as it drains its last task.
        deadline = time.monotonic() + 5.0
        while pool.leaked_workers() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert pool.leaked_workers() == []

    def test_idle_reaper_retires_an_unused_pool(self):
        metrics = MetricsRegistry()
        pool = pool_mod.WorkerPool(max_workers=2, idle_ttl_s=0.05,
                                   metrics=metrics)
        try:
            run_jobs(probes(2), jobs=2, cache=NullCache(), worker_pool=pool)
            deadline = time.monotonic() + 5.0
            while pool.is_warm and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not pool.is_warm
            assert metrics.count("pool.idle_reaped") == 1
        finally:
            pool.shutdown()
        assert pool.leaked_workers() == []


class TestShutdown:
    def test_shutdown_default_leaves_no_workers_or_segments(self):
        run_jobs(probes(3), jobs=2, cache=NullCache())
        pool = pool_mod.default_pool()
        pids = pool.worker_pids()
        assert pids
        pool_mod.shutdown_default()
        assert pool.worker_pids() == ()
        assert pool.leaked_workers() == []
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
        assert shm.live_segments() == ()

    def test_arena_cache_lru_evicts_and_destroys(self):
        if not shm.shm_available():
            pytest.skip("POSIX shared memory unavailable")
        metrics = MetricsRegistry()
        cache = pool_mod.ArenaCache(bound=2, metrics=metrics)
        datasets = [small_dataset(seed=s) for s in (1, 2, 3)]
        tokens = [dataset_token(m, y) for m, y in datasets]
        try:
            for (m, y), token in zip(datasets, tokens):
                assert cache.handle_for(token, m, y) is not None
            assert len(cache) == 2
            assert tokens[0] not in cache.tokens()
            assert metrics.count("pool.arena_evicted") == 1
            assert len(shm.live_segments()) == 2
        finally:
            cache.destroy_all()
        assert shm.live_segments() == ()


class TestAdaptiveDispatcher:
    def test_single_cpu_always_serial(self):
        d = pool_mod.AdaptiveDispatcher(metrics=MetricsRegistry(), cpus=1)
        decision = d.decide(key="cv:x", n_jobs=10, jobs=4)
        assert decision.mode == "serial"
        assert "1 usable cpu" in decision.reason

    def test_no_cost_data_trusts_jobs(self):
        d = pool_mod.AdaptiveDispatcher(metrics=MetricsRegistry(), cpus=4)
        decision = d.decide(key="cv:x", n_jobs=10, jobs=4)
        assert decision.mode == "parallel"
        assert decision.est_job_s is None

    def test_cheap_jobs_go_serial_expensive_parallel(self):
        d = pool_mod.AdaptiveDispatcher(metrics=MetricsRegistry(), cpus=4)
        d.observe_job("cv:cheap", 0.0005)
        d.observe_job("cv:costly", 2.0)
        assert d.decide(key="cv:cheap", n_jobs=10, jobs=4).mode == "serial"
        assert d.decide(key="cv:costly", n_jobs=10, jobs=4).mode == "parallel"

    def test_fallback_key_supplies_cost_data(self):
        d = pool_mod.AdaptiveDispatcher(metrics=MetricsRegistry(), cpus=4)
        d.observe_job("kind:cv_fold", 0.0005)
        decision = d.decide(key="cv:unseen", n_jobs=10, jobs=4,
                            fallback_key="kind:cv_fold")
        assert decision.mode == "serial"
        assert decision.est_job_s == pytest.approx(0.0005)

    def test_counters_and_decision_log(self):
        metrics = MetricsRegistry()
        d = pool_mod.AdaptiveDispatcher(metrics=metrics, cpus=4)
        bookmark = d.seq
        d.observe_job("cv:cheap", 0.0005)
        d.decide(key="cv:cheap", n_jobs=8, jobs=4, warm=True)
        d.decide(key="cv:fresh", n_jobs=8, jobs=4, warm=True)
        assert metrics.count("dispatch.serial_chosen") == 1
        assert metrics.count("dispatch.parallel_chosen") == 1
        logged = d.decisions(since=bookmark)
        assert [entry.mode for entry in logged] == ["serial", "parallel"]
        assert [entry.seq for entry in logged] == [bookmark + 1, bookmark + 2]
        as_dict = logged[0].to_dict()
        assert as_dict["key"] == "cv:cheap"
        assert as_dict["cpus"] == 4
        assert d.decisions(since=d.seq) == []

    def test_ewma_converges_toward_new_costs(self):
        d = pool_mod.AdaptiveDispatcher(metrics=MetricsRegistry(), cpus=4)
        d.observe_job("k", 1.0)
        for _ in range(30):
            d.observe_job("k", 0.001)
        assert d.estimate_job_s("k") < 0.01

    def test_observed_overhead_tips_the_balance(self):
        d = pool_mod.AdaptiveDispatcher(metrics=MetricsRegistry(), cpus=4)
        d.observe_job("cv:mid", 0.05)
        # With the warm prior (0.02s) 10×50ms folds parallelize...
        assert d.decide(key="cv:mid", n_jobs=10, jobs=4,
                        warm=True).mode == "parallel"
        # ...but a measured dispatch overhead dwarfing the work flips it.
        for _ in range(30):
            d.observe_overhead("warm", 5.0)
        assert d.decide(key="cv:mid", n_jobs=10, jobs=4,
                        warm=True).mode == "serial"
