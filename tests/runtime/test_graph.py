"""JobGraph structure and submit_graph dispatch semantics."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.graph import GraphError, JobGraph, submit_graph
from repro.runtime.jobs import JobSpec
from repro.runtime.metrics import MetricsRegistry

SPEC_A = JobSpec(workload="spec.gzip", n_intervals=12, seed=7,
                 scale="tiny", k_max=5)
SPEC_B = JobSpec(workload="spec.art", n_intervals=12, seed=7,
                 scale="tiny", k_max=5)
SPEC_C = JobSpec(workload="spec.mcf", n_intervals=12, seed=7,
                 scale="tiny", k_max=5)


class TestGraphStructure:
    def test_insertion_order_is_topological(self):
        graph = JobGraph()
        a = graph.add(SPEC_A)
        b = graph.add(SPEC_B, deps=[a])
        c = graph.add(SPEC_C, deps=[b])
        assert graph.keys() == [a, b, c]
        assert graph.node(c).depth == 2
        assert graph.waves() == [[a], [b], [c]]

    def test_duplicate_spec_is_single_node(self):
        graph = JobGraph()
        first = graph.add(SPEC_A)
        second = graph.add(SPEC_A)
        assert first == second
        assert len(graph) == 1

    def test_duplicate_with_different_deps_is_error(self):
        graph = JobGraph()
        a = graph.add(SPEC_A)
        graph.add(SPEC_B, deps=[a])
        with pytest.raises(GraphError, match="different"):
            graph.add(SPEC_B)

    def test_unknown_dependency_is_error(self):
        graph = JobGraph()
        with pytest.raises(GraphError, match="not in the graph"):
            graph.add(SPEC_B, deps=[SPEC_A])

    def test_deps_accept_specs_or_keys(self):
        graph = JobGraph()
        graph.add(SPEC_A)
        key = graph.add(SPEC_B, deps=[SPEC_A])
        assert graph.node(key).deps == (SPEC_A.key,)

    def test_waves_group_independent_nodes(self):
        graph = JobGraph()
        a = graph.add(SPEC_A)
        b = graph.add(SPEC_B)
        c = graph.add(SPEC_C, deps=[a, b])
        assert graph.waves() == [[a, b], [c]]


class TestSubmitGraph:
    def test_outcomes_in_insertion_order(self):
        graph = JobGraph()
        graph.add(SPEC_B)
        graph.add(SPEC_A)
        outcomes = submit_graph(graph)
        assert [o.spec for o in outcomes] == [SPEC_B, SPEC_A]
        assert all(o.ok for o in outcomes)

    def test_matches_flat_run_jobs(self):
        from repro.runtime.scheduler import run_jobs
        graph = JobGraph()
        for spec in (SPEC_A, SPEC_B):
            graph.add(spec)
        flat = run_jobs([SPEC_A, SPEC_B])
        graphed = submit_graph(graph)
        for f, g in zip(flat, graphed):
            assert f.key == g.key
            assert f.result.re == g.result.re

    def test_dependent_of_failed_node_is_skipped(self):
        metrics = MetricsRegistry()
        bad = JobSpec(workload="no.such.workload", n_intervals=12, seed=7,
                      scale="tiny", k_max=5)  # unknown workload: fails
        graph = JobGraph()
        bad_key = graph.add(bad)
        dep_key = graph.add(SPEC_A, deps=[bad_key])
        outcomes = submit_graph(graph, metrics=metrics)
        assert not outcomes[0].ok
        skipped = outcomes[1]
        assert not skipped.ok
        assert skipped.worker == "skipped"
        assert "dependency" in skipped.error
        assert skipped.key == dep_key
        assert metrics.snapshot()["counters"]["graph.dep_skipped"] == 1

    def test_on_outcome_streams_every_node(self, tmp_path):
        cache = ResultCache(tmp_path)
        graph = JobGraph()
        graph.add(SPEC_A)
        graph.add(SPEC_B)
        seen = []
        submit_graph(graph, cache=cache, on_outcome=seen.append)
        assert sorted(o.key for o in seen) == sorted(graph.keys())
        # Warm rerun streams cache hits through the same hook.
        warm = []
        submit_graph(graph, cache=cache, on_outcome=warm.append)
        assert all(o.cache_hit for o in warm)
        assert len(warm) == 2
