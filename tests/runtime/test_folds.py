"""Cross-validation fold jobs and the job-kind registry."""

import numpy as np
import pytest

from repro.core.config import AnalysisConfig
from repro.core.cross_validation import fold_indices
from repro.core.regression_tree import RegressionTreeSequence
from repro.runtime import folds as folds_mod
from repro.runtime.folds import (
    FoldResult,
    FoldSpec,
    dataset_token,
    execute_fold,
    publish_dataset,
    run_parallel_folds,
)
from repro.runtime.jobs import JobSpec, resolve_kind
from repro.sparse import CSRMatrix


def small_dataset(m=40, n=6, seed=0):
    rng = np.random.default_rng(seed)
    matrix = (rng.random((m, n)) < 0.5) * rng.integers(1, 10, (m, n))
    y = rng.normal(2.0, 0.5, m)
    return matrix.astype(float), y


def make_spec(token, y, fold_index=0, folds=5, seed=3, k_max=6):
    return FoldSpec(dataset_token=token, fold_index=fold_index,
                    n_points=len(y), folds=folds, seed=seed,
                    k_max=k_max, min_leaf=1)


class TestFoldSpec:
    def test_key_stable_and_distinct(self):
        a = make_spec("tok", np.zeros(40))
        b = make_spec("tok", np.zeros(40))
        c = make_spec("tok", np.zeros(40), fold_index=1)
        assert a.key == b.key
        assert a.key != c.key

    def test_round_trip(self):
        spec = make_spec("tok", np.zeros(40), fold_index=2)
        again = FoldSpec.from_dict(spec.canonical())
        assert again == spec
        assert again.key == spec.key

    def test_kind_not_part_of_identity(self):
        assert FoldSpec.kind == "cv_fold"
        assert "kind" not in make_spec("tok", np.zeros(40)).canonical()


class TestDatasetToken:
    def test_content_addressed(self):
        matrix, y = small_dataset()
        assert dataset_token(matrix, y) == dataset_token(matrix.copy(),
                                                         y.copy())
        other = matrix.copy()
        other[0, 0] += 1
        assert dataset_token(matrix, y) != dataset_token(other, y)

    def test_sparse_and_dense_tokens_differ_by_layout_not_crash(self):
        matrix, y = small_dataset()
        sparse = CSRMatrix.from_dense(matrix)
        assert dataset_token(sparse, y) == dataset_token(
            CSRMatrix.from_dense(matrix), y)


class TestExecuteFold:
    def test_matches_serial_loop_body(self):
        matrix, y = small_dataset()
        token = dataset_token(matrix, y)
        publish_dataset(token, matrix, y)
        try:
            spec = make_spec(token, y, fold_index=1)
            result = execute_fold(spec)
        finally:
            folds_mod._DATASETS.pop(token, None)
        held_out = fold_indices(len(y), spec.folds,
                                np.random.default_rng(spec.seed))[1]
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[held_out] = False
        tree = RegressionTreeSequence(k_max=spec.k_max, min_leaf=1)
        tree.fit(matrix[train_mask], y[train_mask])
        predictions = tree.predict_all_k(matrix[held_out])
        expected = ((predictions - y[held_out][:, None]) ** 2).sum(axis=0)
        np.testing.assert_array_equal(np.asarray(result.errors), expected)
        assert result.reached == tree.max_k()
        assert result.key == spec.key

    def test_unpublished_dataset_raises(self):
        spec = make_spec("no-such-token", np.zeros(40))
        with pytest.raises(RuntimeError, match="not published"):
            execute_fold(spec)

    def test_result_round_trip(self):
        result = FoldResult(key="k", errors=(1.5, 2.25), reached=2,
                            timings={"fold_s": 0.1})
        again = FoldResult.from_dict(result.to_dict())
        assert again == result


class TestRunParallelFolds:
    def test_serial_and_parallel_identical(self):
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=6, folds=5, seed=3)
        one = run_parallel_folds(matrix, y, config, jobs=1)
        four = run_parallel_folds(matrix, y, config, jobs=4)
        np.testing.assert_array_equal(one, four)

    def test_dataset_unpublished_after_run(self):
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=4, folds=4, seed=3)
        run_parallel_folds(matrix, y, config, jobs=1)
        assert dataset_token(matrix, y) not in folds_mod._DATASETS


class TestKindRegistry:
    def test_analysis_and_cv_fold_registered(self):
        assert resolve_kind("analysis").spec_from_dict == JobSpec.from_dict
        kind = resolve_kind("cv_fold")
        assert kind.execute is execute_fold
        assert kind.result_from_dict == FoldResult.from_dict

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="no.such.kind"):
            resolve_kind("no.such.kind")

    def test_lazy_import_in_fresh_process(self):
        """A process that never imported repro.runtime.folds (a pool
        worker receiving only the kind name) still resolves cv_fold."""
        import os
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = ("import sys\n"
                "from repro.runtime.jobs import resolve_kind\n"
                "assert 'repro.runtime.folds' not in sys.modules\n"
                "print(resolve_kind('cv_fold').name)\n")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "cv_fold"
