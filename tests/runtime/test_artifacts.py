"""The artifact store: atomic publication, quarantine, bounded pruning.

The store holds the pipeline's bulky intermediates (traces, EIPV
matrices) as memmappable directories, so its guarantees are the result
cache's at directory granularity: a reader sees a complete artifact or
a miss (never a partial one), damage quarantines and silently
recomputes, and eviction is bounded together with the object tier in
deterministic sorted order.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.runtime.cache import ArtifactStore, ResultCache
from repro.runtime.metrics import MetricsRegistry

KEY = "cd" * 32
OTHER = "ef" * 32


def put_simple(store: ArtifactStore, key: str = KEY,
               kind: str = "eipv", value: float = 1.5) -> None:
    with store.put(kind, key, {"n": 3}) as staging:
        np.save(staging / "data.npy", np.full(3, value))


class TestRoundTrip:
    def test_put_then_open_meta_and_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store)
        assert store.has("eipv", KEY)
        assert store.open_meta("eipv", KEY) == {"n": 3}
        view = store.load_array("eipv", KEY, "data")
        assert view is not None
        np.testing.assert_array_equal(np.asarray(view), np.full(3, 1.5))

    def test_loaded_views_are_read_only(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store)
        view = store.load_array("eipv", KEY, "data")
        assert view.flags.writeable is False
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 99.0

    def test_missing_artifact_is_a_miss(self, tmp_path):
        metrics = MetricsRegistry()
        store = ArtifactStore(tmp_path, metrics=metrics)
        assert store.has("eipv", KEY) is False
        assert store.open_meta("eipv", KEY) is None
        assert metrics.snapshot()["counters"].get("artifact.miss") == 1

    def test_kind_and_key_are_distinct_namespaces(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store, kind="trace", value=1.0)
        put_simple(store, kind="eipv", value=2.0)
        assert np.asarray(store.load_array("trace", KEY, "data"))[0] == 1.0
        assert np.asarray(store.load_array("eipv", KEY, "data"))[0] == 2.0

    def test_put_failure_leaves_no_litter_and_no_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.put("eipv", KEY, {}) as staging:
                np.save(staging / "data.npy", np.zeros(2))
                raise RuntimeError("publisher died mid-write")
        assert store.has("eipv", KEY) is False
        assert list(tmp_path.rglob("*.tmp")) == []


class TestQuarantine:
    def test_truncated_array_quarantines_whole_artifact(self, tmp_path):
        metrics = MetricsRegistry()
        store = ArtifactStore(tmp_path, metrics=metrics)
        put_simple(store)
        npy = store.entry_dir("eipv", KEY) / "data.npy"
        npy.write_bytes(npy.read_bytes()[:10])  # torn write
        assert store.load_array("eipv", KEY, "data") is None
        # The whole directory moved aside: next probe is a clean miss,
        # so the producing stage silently recomputes.
        assert store.has("eipv", KEY) is False
        assert len(store.quarantined()) == 1
        counters = metrics.snapshot()["counters"]
        assert counters.get("artifact.quarantined") == 1

    def test_garbage_meta_quarantines(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store)
        (store.entry_dir("eipv", KEY) / "meta.json").write_text("{oops")
        assert store.open_meta("eipv", KEY) is None
        assert store.has("eipv", KEY) is False
        assert len(store.quarantined()) == 1

    def test_wrong_schema_or_identity_quarantines(self, tmp_path):
        import json
        store = ArtifactStore(tmp_path)
        put_simple(store)
        meta_path = store.entry_dir("eipv", KEY) / "meta.json"
        envelope = json.loads(meta_path.read_text())
        envelope["key"] = OTHER
        meta_path.write_text(json.dumps(envelope))
        assert store.open_meta("eipv", KEY) is None
        assert len(store.quarantined()) == 1

    def test_repeated_quarantine_keeps_every_specimen(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for _ in range(2):
            put_simple(store)
            (store.entry_dir("eipv", KEY) / "meta.json").write_text("x")
            assert store.open_meta("eipv", KEY) is None
        names = [p.name for p in store.quarantined()]
        assert names == [KEY, f"{KEY}.1"]


class TestMaintenance:
    def test_entries_sorted_and_exclude_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store, key=OTHER)
        put_simple(store, key=KEY)
        put_simple(store, key="aa" * 32, kind="trace")
        (store.entry_dir("eipv", KEY) / "meta.json").write_text("x")
        assert store.open_meta("eipv", KEY) is None  # quarantined
        entries = store.entries()
        assert entries == sorted(entries)  # full-path (kind-major) order
        names = [p.name for p in entries]
        assert KEY not in names and OTHER in names

    def test_stats_counts_by_kind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store, key=KEY, kind="trace")
        put_simple(store, key=KEY, kind="eipv")
        put_simple(store, key=OTHER, kind="eipv")
        stats = store.stats()
        assert stats.entries == 3
        assert stats.by_kind == {"eipv": 2, "trace": 1}
        assert stats.total_bytes > 0
        assert "artifact store" in stats.render()

    def test_prune_is_deterministic_sorted_eviction(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [f"{i:064x}" for i in (7, 1, 4, 9)]
        for key in keys:
            put_simple(store, key=key)
        assert store.prune(max_entries=2) == 2
        survivors = [p.name for p in store.entries()]
        assert survivors == sorted(keys)[2:]

    def test_clear_removes_artifacts_and_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_simple(store, key=KEY)
        put_simple(store, key=OTHER)
        (store.entry_dir("eipv", KEY) / "meta.json").write_text("x")
        store.open_meta("eipv", KEY)
        assert store.clear() == 1  # OTHER; KEY was quarantined
        assert store.entries() == []
        assert store.quarantined() == []


class TestResultCacheIntegration:
    def test_cache_prune_bounds_both_tiers(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            key = f"{i:064x}"
            cache.put(key, {"k": key})
            put_simple(cache.artifacts, key=key)
        removed = cache.prune(max_entries=1)
        assert removed == 6  # 3 objects + 3 artifacts
        assert len(cache.entries()) == 1
        assert len(cache.artifacts.entries()) == 1
        # Deterministic on both tiers: the lexically-latest entries live.
        assert cache.entries()[0].stem == f"{3:064x}"
        assert cache.artifacts.entries()[0].name == f"{3:064x}"

    def test_cache_clear_covers_artifacts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"k": 1})
        put_simple(cache.artifacts, key=KEY)
        put_simple(cache.artifacts, key=OTHER, kind="trace")
        assert cache.clear() == 3
        assert cache.entries() == []
        assert cache.artifacts.entries() == []

    def test_contains_probe_has_no_metrics_side_effect(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=metrics)
        assert cache.contains(KEY) is False
        cache.put(KEY, {"k": 1})
        assert cache.contains(KEY) is True
        counters = metrics.snapshot()["counters"]
        assert "cache.hit" not in counters
        assert "cache.miss" not in counters


def _race_publisher(root: str, key: str, barrier, rounds: int) -> None:
    """One racing publisher: rendezvous, then publish the same artifact
    repeatedly so two writers genuinely overlap in the rename window."""
    store = ArtifactStore(Path(root))
    for _ in range(rounds):
        barrier.wait(timeout=30)
        with store.put("eipv", key, {"n": 4}) as staging:
            np.save(staging / "data.npy", np.arange(4.0))


class TestConcurrentPublishers:
    def test_same_key_race_leaves_one_valid_artifact(self, tmp_path):
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
            barrier = ctx.Barrier(3)
        except (OSError, PermissionError, ValueError):
            pytest.skip("multiprocessing unavailable in this environment")
        rounds = 25
        workers = [ctx.Process(target=_race_publisher,
                               args=(str(tmp_path), KEY, barrier, rounds))
                   for _ in range(2)]
        for worker in workers:
            worker.start()
        store = ArtifactStore(tmp_path)
        for _ in range(rounds):
            barrier.wait(timeout=30)
            # Readers racing the publishers must only ever see a
            # complete artifact or a miss — never a partial directory.
            meta = store.open_meta("eipv", KEY)
            assert meta is None or meta == {"n": 4}
        for worker in workers:
            worker.join(30)
            assert worker.exitcode == 0

        # Exactly one valid artifact for the key...
        assert store.open_meta("eipv", KEY) == {"n": 4}
        np.testing.assert_array_equal(
            np.asarray(store.load_array("eipv", KEY, "data")),
            np.arange(4.0))
        assert [p.name for p in store.entries()] == [KEY]
        # ...no quarantine debris and no leaked temp directories.
        assert store.quarantined() == []
        assert list(tmp_path.rglob("*.tmp")) == []
