"""Scheduler determinism, fallback, manifests, and metrics."""

import pytest

from repro.experiments import table2_quadrants
from repro.runtime import options as runtime_options
from repro.runtime import pool as pool_mod
from repro.runtime import scheduler
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import JobSpec
from repro.runtime.manifest import RunManifest
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import run_jobs

SPECS = [
    JobSpec(workload="spec.gzip", n_intervals=12, seed=7, scale="tiny",
            k_max=5),
    JobSpec(workload="spec.art", n_intervals=12, seed=7, scale="tiny",
            k_max=5),
]


class TestDeterminism:
    def test_same_spec_twice_identical_curve_and_key(self):
        first, = run_jobs([SPECS[0]])
        second, = run_jobs([SPECS[0]])
        assert first.key == second.key
        assert first.result.re == second.result.re
        assert first.result.to_result().summary() == \
            second.result.to_result().summary()

    def test_two_workers_match_serial(self):
        serial = run_jobs(SPECS, jobs=1)
        parallel = run_jobs(SPECS, jobs=2)
        assert [o.spec for o in parallel] == SPECS  # submission order kept
        for s, p in zip(serial, parallel):
            assert s.key == p.key
            assert s.result.re == p.result.re
            assert _without_timings(s) == _without_timings(p)

    def test_census_render_identical_serial_parallel_cached(self, tmp_path):
        names = ["spec.gzip", "spec.art"]
        kwargs = dict(workloads=names, seed=7, k_max=5, n_intervals=12)
        serial = table2_quadrants.render(table2_quadrants.run(**kwargs))
        cache = ResultCache(tmp_path)
        parallel = table2_quadrants.render(
            table2_quadrants.run(jobs=2, cache=cache, **kwargs))
        warm_run = table2_quadrants.run(jobs=2, cache=cache, **kwargs)
        warm = table2_quadrants.render(warm_run)
        assert serial == parallel == warm
        assert warm_run.manifest.hit_rate == 1.0


def _without_timings(outcome):
    data = outcome.result.to_dict()
    data.pop("timings")
    return data


class TestCacheIntegration:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_jobs(SPECS, cache=cache)
        warm = run_jobs(SPECS, cache=cache)
        assert not any(o.cache_hit for o in cold)
        assert all(o.cache_hit for o in warm)
        for c, w in zip(cold, warm):
            assert c.result.re == w.result.re

    def test_corrupted_entry_recomputed_transparently(self, tmp_path):
        cache = ResultCache(tmp_path)
        primed, = run_jobs([SPECS[0]], cache=cache)
        cache.entry_path(primed.key).write_text("garbage", encoding="utf-8")
        recomputed, = run_jobs([SPECS[0]], cache=cache)
        assert recomputed.ok and not recomputed.cache_hit
        assert recomputed.result.re == primed.result.re
        assert cache.stats().quarantined == 1
        rehit, = run_jobs([SPECS[0]], cache=cache)
        assert rehit.cache_hit

    def test_wrong_shape_payload_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        primed, = run_jobs([SPECS[0]], cache=cache)
        cache.put(primed.key, {"nonsense": True})
        recomputed, = run_jobs([SPECS[0]], cache=cache)
        assert recomputed.ok and not recomputed.cache_hit
        assert recomputed.result.re == primed.result.re


class TestFailureHandling:
    @pytest.fixture(autouse=True)
    def _cold_pool(self):
        """Monkeypatched pool constructors only bite when no warm
        executor survives from an earlier test (acquire would reuse it
        and never call ``scheduler.ProcessPoolExecutor``)."""
        pool_mod.reset_default()
        yield
        pool_mod.reset_default()

    def test_unknown_workload_yields_error_outcome(self):
        bad = JobSpec(workload="no.such.workload", n_intervals=12,
                      scale="tiny", k_max=5)
        outcome, = run_jobs([bad])
        assert not outcome.ok
        assert outcome.error is not None
        assert "no.such.workload" in outcome.error

    def test_census_raises_on_failed_job(self):
        with pytest.raises(RuntimeError, match="census jobs failed"):
            table2_quadrants.run(workloads=["no.such.workload"],
                                 n_intervals=12, k_max=5)

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores here")
        monkeypatch.setattr(scheduler, "ProcessPoolExecutor", broken_pool)
        outcomes = run_jobs(SPECS, jobs=4)
        assert all(o.ok for o in outcomes)
        assert all(o.worker.startswith("pid-") for o in outcomes)

    def test_per_job_timeout_records_timeout_outcome(self, monkeypatch):
        monkeypatch.setattr(scheduler, "ProcessPoolExecutor",
                            _fake_pool(scheduler.FuturesTimeout))
        outcomes = run_jobs(SPECS, jobs=2, timeout=0.5)
        assert all(o.timed_out and not o.ok for o in outcomes)
        assert all("timeout" in o.error for o in outcomes)

    def test_broken_pool_mid_flight_finishes_serially(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool
        monkeypatch.setattr(scheduler, "ProcessPoolExecutor",
                            _fake_pool(BrokenProcessPool))
        outcomes = run_jobs(SPECS, jobs=2)
        assert all(o.ok for o in outcomes)
        assert all(o.worker.startswith("pid-") for o in outcomes)

    def test_fallback_failure_chains_pool_construction_error(
            self, monkeypatch):
        # Pool can't be built AND the job itself is broken: the outcome
        # must carry both tracebacks — the serial one and the pool
        # failure that forced the fallback (regression: the pool error
        # used to be silently discarded).
        def broken_pool(*args, **kwargs):
            raise OSError("sandbox forbids semaphores")
        monkeypatch.setattr(scheduler, "ProcessPoolExecutor", broken_pool)
        bad = [JobSpec(workload="no.such.workload", n_intervals=12,
                       scale="tiny", k_max=5, seed=s) for s in (1, 2)]
        outcomes = run_jobs(bad, jobs=2)
        for outcome in outcomes:
            assert not outcome.ok
            assert "no.such.workload" in outcome.error
            assert "fallback" in outcome.error
            assert "sandbox forbids semaphores" in outcome.error

    def test_fallback_failure_chains_broken_pool_error(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool
        monkeypatch.setattr(scheduler, "ProcessPoolExecutor",
                            _fake_pool(BrokenProcessPool))
        bad = [JobSpec(workload="no.such.workload", n_intervals=12,
                       scale="tiny", k_max=5, seed=s) for s in (1, 2)]
        outcomes = run_jobs(bad, jobs=2)
        for outcome in outcomes:
            assert not outcome.ok
            # Serial retry traceback first, then the original pool death.
            assert "no.such.workload" in outcome.error
            assert "BrokenProcessPool" in outcome.error
            assert "simulated" in outcome.error

    def test_fallback_success_has_no_pool_noise(self, monkeypatch):
        # When the serial retry succeeds, the pool failure must not leak
        # into the outcome: the run recovered, the error slot stays None.
        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores here")
        monkeypatch.setattr(scheduler, "ProcessPoolExecutor", broken_pool)
        outcomes = run_jobs(SPECS, jobs=2)
        assert all(o.ok and o.error is None for o in outcomes)


def _fake_pool(exc_type):
    """A pool whose every future fails with ``exc_type`` on result()."""

    class FakeFuture:
        def result(self, timeout=None):
            raise exc_type("simulated")

        def cancel(self):
            return False

    class FakePool:
        def __init__(self, max_workers=None, initializer=None,
                     initargs=()):
            pass

        def submit(self, fn, *args):
            return FakeFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    return FakePool


class TestManifest:
    def test_aggregates_and_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs(SPECS, cache=cache)
        outcomes = run_jobs(SPECS, cache=cache)
        manifest = RunManifest.from_outcomes(outcomes, command="census",
                                             jobs=2, cache_root=tmp_path)
        assert manifest.n_jobs == 2
        assert manifest.n_cache_hits == 2
        assert manifest.hit_rate == 1.0
        assert "100%" in manifest.summary()
        path = manifest.save(cache.manifest_dir)
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_failure_recorded_with_traceback(self):
        bad = JobSpec(workload="no.such.workload", n_intervals=12,
                      scale="tiny", k_max=5)
        outcome, = run_jobs([bad])
        manifest = RunManifest.from_outcomes([outcome])
        record, = manifest.records
        assert record.status == "failed"
        assert "Traceback" in record.error
        assert manifest.n_failed == 1


class TestOptionsAndMetrics:
    def test_options_configure_and_reset(self, tmp_path):
        try:
            opts = runtime_options.configure(jobs=3, cache_dir=tmp_path,
                                             no_cache=False, timeout=9.0)
            assert runtime_options.current() == opts
            assert opts.jobs == 3
            cache = opts.build_cache()
            assert cache.root == tmp_path
        finally:
            runtime_options.reset()
        defaults = runtime_options.current()
        assert defaults.jobs == 1
        assert defaults.build_cache().root is None  # NullCache

    def test_metrics_counters_timers_merge_render(self):
        a = MetricsRegistry()
        a.inc("cache.hit", 2)
        with a.time("job.wall_s"):
            pass
        b = MetricsRegistry()
        b.inc("cache.hit")
        b.observe("job.wall_s", 0.5)
        a.merge(b.snapshot())
        assert a.count("cache.hit") == 3
        assert a.observations("job.wall_s") == 2
        assert a.total_seconds("job.wall_s") >= 0.5
        text = a.render()
        assert "cache.hit" in text and "job.wall_s" in text

    def test_scheduler_populates_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=metrics)
        run_jobs([SPECS[0]], cache=cache, metrics=metrics)
        run_jobs([SPECS[0]], cache=cache, metrics=metrics)
        assert metrics.count("jobs.executed") == 1
        assert metrics.count("cache.hit") == 1
        assert metrics.count("cache.store") == 1
        assert metrics.observations("job.wall_s") == 2
