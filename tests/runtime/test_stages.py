"""The stage graph: byte-identity across the pipeline split.

The invariant this file defends: splitting one analysis into
collect → eipv → analysis stage nodes — with intermediates persisted in
the artifact store and reloaded zero-copy — changes *nothing* about the
results.  Cold, warm, artifact-warm and killed+resumed runs all produce
the monolithic pipeline's exact bytes; only the work done differs.
"""

import json

import pytest

from repro.runtime import stages
from repro.runtime.cache import ResultCache
from repro.runtime.graph import submit_graph
from repro.runtime.jobs import JobSpec, execute_job
from repro.runtime.metrics import MetricsRegistry
from repro.sweep import SweepInterrupted, SweepSpace, run_sweep
from repro.sweep.engine import RUNTIME_STATS_NAME


def tiny_spec(interval: int = 2_000_000, n_intervals: int = 12,
              workload: str = "spec.gzip", seed: int = 7) -> JobSpec:
    return JobSpec(workload=workload, n_intervals=n_intervals, seed=seed,
                   scale="tiny", k_max=5, folds=4,
                   interval_instructions=interval)


def strip(result) -> dict:
    """A result's deterministic fields (timings/spans are measured)."""
    data = result.to_dict()
    data.pop("timings", None)
    data.pop("spans", None)
    return data


class TestSpecDerivation:
    def test_interval_variants_share_one_collect_stage(self):
        # Same (workload, machine, seed) cell, same total instructions,
        # different EIPV granularity: one simulated execution.
        at_2m = tiny_spec(interval=2_000_000, n_intervals=30)
        at_5m = tiny_spec(interval=5_000_000, n_intervals=12)
        assert stages.collect_spec_for(at_2m).key \
            == stages.collect_spec_for(at_5m).key
        assert stages.eipv_spec_for(at_2m).key \
            != stages.eipv_spec_for(at_5m).key

    def test_different_cells_do_not_share(self):
        base = stages.collect_spec_for(tiny_spec())
        for variant in (tiny_spec(seed=8), tiny_spec(workload="spec.art"),
                        tiny_spec(n_intervals=13)):
            assert stages.collect_spec_for(variant).key != base.key

    def test_stage_specs_round_trip_like_pool_payloads(self):
        # Workers rebuild specs from spec.canonical(); the kind tag the
        # canonical embeds must be tolerated by from_dict.
        collect = stages.collect_spec_for(tiny_spec())
        eipv = stages.eipv_spec_for(tiny_spec())
        assert stages.CollectSpec.from_dict(collect.canonical()) == collect
        assert stages.EipvSpec.from_dict(eipv.canonical()) == eipv

    def test_eipv_spec_embeds_its_upstream(self):
        # Self-describing stages: the EIPV spec can derive its collect
        # stage without any side channel — what makes lost artifacts
        # recoverable in-stage.
        spec = tiny_spec()
        assert stages.eipv_spec_for(spec).collect_spec() \
            == stages.collect_spec_for(spec)


class TestGraphShapes:
    def test_shared_prefix_forest(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [tiny_spec(interval=2_000_000, n_intervals=30),
                 tiny_spec(interval=5_000_000, n_intervals=12)]
        graph = stages.analysis_graph(specs, cache=cache,
                                      artifacts=cache.artifacts)
        # 1 shared collect + 2 eipv + 2 analysis = 5 nodes, 3 waves.
        assert len(graph) == 5
        assert [len(wave) for wave in graph.waves()] == [1, 2, 2]

    def test_without_artifacts_degenerates_to_flat_graph(self):
        specs = [tiny_spec(), tiny_spec(workload="spec.art")]
        graph = stages.analysis_graph(specs, cache=None, artifacts=None)
        assert len(graph) == 2
        assert [len(wave) for wave in graph.waves()] == [2]

    def test_cached_final_skips_its_stage_nodes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec.key, {"anything": True})
        graph = stages.analysis_graph([spec], cache=cache,
                                      artifacts=cache.artifacts)
        assert len(graph) == 1
        assert graph.node(spec.key).deps == ()


class TestArtifactPlumbing:
    def test_artifact_context_installs_and_restores(self, tmp_path):
        cache = ResultCache(tmp_path)
        before = stages.current_artifact_store()
        with stages.artifact_context(cache.artifacts):
            assert stages.current_artifact_store() is cache.artifacts
        assert stages.current_artifact_store() is before

    def test_store_for_nullcache_and_disabled_option(self, tmp_path):
        from repro.runtime.cache import NullCache
        cache = ResultCache(tmp_path)
        assert stages.artifact_store_for(NullCache()) is None
        assert stages.artifact_store_for(None) is None
        assert stages.artifact_store_for(cache, enabled=False) is None
        assert stages.artifact_store_for(cache, enabled=True) \
            is cache.artifacts

    def test_stage_setup_is_keyed_by_store_root(self, tmp_path):
        cache = ResultCache(tmp_path)
        setup = stages.stage_setup(cache.artifacts)
        assert str(cache.artifacts.root) in setup.key

    def test_unusable_root_degrades_to_no_store(self, tmp_path):
        # --cache-dir pointing at a regular file must not fail the run:
        # the artifact tier silently disables and the monolithic path
        # carries on (mirrors the shm fallback contract).
        target = tmp_path / "not-a-dir"
        target.write_text("plain file")
        cache = ResultCache(target)
        assert stages.artifact_store_for(cache, enabled=True) is None

    def test_publish_failure_never_fails_the_stage(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = cache.artifacts
        spec = stages.collect_spec_for(tiny_spec())
        # Occupy the store's root with a regular file mid-run: the
        # publish raises OSError internally, but the simulate still
        # succeeds and the stage reports a computed (unpersisted)
        # result.
        store.root.write_text("squatter")
        with stages.artifact_context(store):
            result = stages.execute_collect(spec)
        assert result.source == "computed"
        assert result.n_samples > 0
        assert store.entries() == []


class TestStagedByteIdentity:
    def run_staged(self, cache, spec):
        graph = stages.analysis_graph([spec], cache=cache,
                                      artifacts=cache.artifacts)
        with stages.artifact_context(cache.artifacts):
            outcomes = submit_graph(graph, jobs=1, cache=cache)
        assert all(outcome.ok for outcome in outcomes)
        return outcomes

    def test_staged_equals_monolithic_cold_and_artifact_warm(self, tmp_path):
        spec = tiny_spec()
        reference = strip(execute_job(spec))

        cache = ResultCache(tmp_path)
        cold = self.run_staged(cache, spec)
        assert strip(cold[-1].result) == reference
        # Both stages computed and published their artifacts.
        assert [o.result.source for o in cold[:2]] \
            == ["computed", "computed"]
        assert cache.artifacts.stats().by_kind == {"eipv": 1, "trace": 1}

        # Drop the result objects but keep the artifacts: the rerun
        # reloads zero-copy instead of re-simulating, same bytes out.
        for path in cache.entries():
            path.unlink()
        warm = self.run_staged(cache, spec)
        assert [o.result.source for o in warm[:2]] \
            == ["artifact", "artifact"]
        assert strip(warm[-1].result) == reference

    def test_fully_warm_run_is_one_cache_hit(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        self.run_staged(cache, spec)
        again = self.run_staged(cache, spec)
        assert len(again) == 1  # cached final: no stage nodes at all
        assert again[0].cache_hit is True

    def test_torn_trace_artifact_heals_silently(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        reference = strip(self.run_staged(cache, spec)[-1].result)

        # Tear the trace artifact, drop everything downstream of it.
        store = cache.artifacts
        collect_key = stages.collect_spec_for(spec).key
        column = store.entry_dir("trace", collect_key) / "eips.npy"
        column.write_bytes(column.read_bytes()[:16])
        store.entry_dir("eipv", stages.eipv_spec_for(spec).key)
        store.prune(max_entries=0)  # also exercise empty-store rebuild
        for path in cache.entries():
            path.unlink()

        healed = self.run_staged(cache, spec)
        assert strip(healed[-1].result) == reference
        # The store holds fresh, valid artifacts again.
        assert cache.artifacts.stats().by_kind == {"eipv": 1, "trace": 1}

    def test_eipv_self_heal_recomputes_quarantined_trace(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        reference = strip(self.run_staged(cache, spec)[-1].result)
        store = cache.artifacts
        collect_key = stages.collect_spec_for(spec).key
        eipv_key = stages.eipv_spec_for(spec).key

        # Corrupt the trace, remove the eipv artifact, then run *only*
        # the eipv stage: it must quarantine the bad trace, re-simulate
        # in-stage, and republish both artifacts.
        column = store.entry_dir("trace", collect_key) / "eips.npy"
        column.write_bytes(b"\x93NUMPY garbage")
        import shutil
        shutil.rmtree(store.entry_dir("eipv", eipv_key))
        with stages.artifact_context(store):
            result = stages.execute_eipv(stages.eipv_spec_for(spec))
        assert result.source == "computed"
        assert len(store.quarantined()) == 1
        assert store.has("trace", collect_key)
        assert store.has("eipv", eipv_key)

        # And the healed dataset still feeds a byte-identical analysis.
        for path in cache.entries():
            path.unlink()
        assert strip(self.run_staged(cache, spec)[-1].result) == reference


SPACE = SweepSpace(workloads=("spec.gzip", "spec.art"),
                   interval_instructions=(2_000_000, 5_000_000),
                   seeds=(7,), n_intervals=4)  # 2 cells, 4 points


class TestStagedSweep:
    def test_staged_sweep_matches_monolithic_and_shares_collects(
            self, tmp_path):
        # Without a cache there is no artifact store: the sweep runs
        # monolithically.  With one, it runs staged.  Same bytes.
        monolithic = run_sweep(SPACE, tmp_path / "mono", shards=2)
        cache = ResultCache(tmp_path / "cache")
        staged = run_sweep(SPACE, tmp_path / "staged", shards=2,
                           cache=cache)
        assert staged.report == monolithic.report
        assert monolithic.stage_stats["stages"]["collect_computed"] == 0

        # 4 points over 2 (workload, machine, seed) cells: each cell
        # simulated once, each interval-size variant built once.
        assert staged.stage_stats["stages"] == {
            "collect_computed": 2, "collect_artifact_hits": 0,
            "eipv_computed": 4, "eipv_artifact_hits": 0}
        assert cache.artifacts.stats().by_kind == {"eipv": 4, "trace": 2}

    def test_warm_sweep_recomputes_zero_collect_stages(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(SPACE, tmp_path / "cold", shards=2, cache=cache)
        # Drop the JSON result tier, keep the artifacts: a fresh sweep
        # directory must rebuild every point without one re-simulation.
        for path in cache.entries():
            path.unlink()
        warm = run_sweep(SPACE, tmp_path / "warm", shards=2, cache=cache)
        assert warm.stage_stats["stages"]["collect_computed"] == 0
        assert warm.stage_stats["stages"]["collect_artifact_hits"] == 2
        assert warm.stage_stats["stages"]["eipv_artifact_hits"] == 4
        assert warm.n_executed == 4  # analyses re-ran, cheaply

        stats = json.loads(
            (tmp_path / "warm" / RUNTIME_STATS_NAME).read_text())
        assert stats["stages"]["collect_computed"] == 0
        assert stats["artifact_store"]["entries"] == 6

    def test_fully_warm_rerun_serves_stage_nodes_from_result_cache(
            self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(SPACE, tmp_path / "one", shards=2, cache=cache)
        again = run_sweep(SPACE, tmp_path / "two", shards=2, cache=cache)
        # Final results are cached, so their stage nodes are never even
        # added to the graph: a warm sweep is pure cache hits.
        assert again.n_cached == 4 and again.n_executed == 0
        assert again.stage_stats["stage_cache"] == {"hits": 0, "failed": 0}

    def test_killed_staged_sweep_resumes_byte_identically(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_dir = tmp_path / "sweep"
        with pytest.raises(SweepInterrupted):
            run_sweep(SPACE, sweep_dir, shards=4, cache=cache,
                      stop_after=2)
        # The crash drill still recorded its runtime stats...
        assert (sweep_dir / RUNTIME_STATS_NAME).is_file()

        metrics = MetricsRegistry()
        resumed = run_sweep(SPACE, sweep_dir, shards=4, cache=cache,
                            metrics=metrics)
        reference = run_sweep(SPACE, tmp_path / "ref", shards=1)
        assert resumed.report == reference.report
        # ...and the resumed run re-simulated nothing: surviving stage
        # results come back as cache hits or artifact hits.
        stats = json.loads(
            (sweep_dir / RUNTIME_STATS_NAME).read_text())
        assert stats["stages"]["collect_computed"] == 0
        assert stats["points"]["failed"] == 0

    def test_runtime_stats_are_deterministic_counters_only(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(SPACE, tmp_path / "sweep", shards=2, cache=cache)
        raw = (tmp_path / "sweep" / RUNTIME_STATS_NAME).read_text()
        stats = json.loads(raw)
        # Purity check over everything but the store root (a path the
        # test host picked, free to contain any substring).
        stats_sans_root = json.loads(raw)
        stats_sans_root["artifact_store"].pop("root")
        lowered = json.dumps(stats_sans_root).lower()
        for token in ("wall", "elapsed", "seconds", "time"):
            assert token not in lowered
        assert stats["schema"] == 1
        assert stats["space_key"] == SPACE.key
        assert set(stats["points"]) == {"cached", "executed", "failed"}
