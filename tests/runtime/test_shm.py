"""The shared-memory arena: zero-copy publication and its failure paths.

Everything here guards two invariants: parallel-fold results are
bit-identical no matter which transport carried the dataset (shm views,
pickled arrays, or the in-parent serial fallback), and no code path —
normal completion, fold errors, broken workers, scheduler crashes —
leaves a segment behind in ``/dev/shm``.
"""

import numpy as np
import pytest

from repro.core.config import AnalysisConfig
from repro.core.cross_validation import cross_validated_sse
from repro.runtime import pool as pool_mod
from repro.runtime import shm
from repro.runtime.cache import NullCache
from repro.runtime.folds import (
    FoldSpec,
    _init_worker_shm,
    dataset_token,
    run_parallel_folds,
)
from repro.sparse import CSRMatrix
from tests.runtime.test_folds import small_dataset

pytestmark = pytest.mark.skipif(not shm.shm_available(),
                                reason="POSIX shared memory unavailable")


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must end with zero live segments once the warm pool's
    arena cache is torn down (the ``atexit`` contract, exercised per
    test).  Segments held by the cache *during* a test are owned, not
    leaked."""
    pool_mod.reset_default()
    assert shm.live_segments() == ()
    yield
    pool_mod.reset_default()
    leaked = shm.live_segments()
    shm.reap()
    shm.detach_all()
    assert leaked == ()


class TestArena:
    def test_dense_round_trip_read_only(self):
        matrix, y = small_dataset()
        token = dataset_token(matrix, y)
        with shm.SharedArena() as arena:
            handle = arena.publish(token, matrix, y)
            assert handle is not None
            assert handle.token == token
            assert not handle.sparse
            got_matrix, got_y = shm.attach_dataset(handle)
            np.testing.assert_array_equal(got_matrix, matrix)
            np.testing.assert_array_equal(got_y, y)
            assert not got_matrix.flags.writeable
            assert not got_y.flags.writeable
            with pytest.raises(ValueError):
                got_matrix[0, 0] = 99.0
        shm.detach_all()

    def test_csr_round_trip(self):
        matrix, y = small_dataset()
        sparse = CSRMatrix.from_dense(matrix)
        token = dataset_token(sparse, y)
        with shm.SharedArena() as arena:
            handle = arena.publish(token, sparse, y)
            assert handle.sparse
            got_matrix, got_y = shm.attach_dataset(handle)
            np.testing.assert_array_equal(got_matrix.toarray(), matrix)
            np.testing.assert_array_equal(got_y, y)
        shm.detach_all()

    def test_handle_is_small_and_picklable(self):
        """Only the layout descriptor crosses the process boundary."""
        import pickle

        matrix, y = small_dataset(m=200, n=40)
        with shm.SharedArena() as arena:
            handle = arena.publish(dataset_token(matrix, y), matrix, y)
            payload = pickle.dumps(handle)
            assert len(payload) < 2048
            assert pickle.loads(payload) == handle
            assert handle.nbytes == matrix.nbytes + y.nbytes

    def test_destroy_unlinks_and_is_idempotent(self):
        matrix, y = small_dataset()
        arena = shm.SharedArena()
        arena.publish(dataset_token(matrix, y), matrix, y)
        assert len(shm.live_segments()) == 1
        arena.destroy()
        assert shm.live_segments() == ()
        arena.destroy()

    def test_context_manager_unlinks_on_exception(self):
        matrix, y = small_dataset()
        with pytest.raises(RuntimeError, match="boom"):
            with shm.SharedArena() as arena:
                arena.publish(dataset_token(matrix, y), matrix, y)
                raise RuntimeError("boom")
        assert shm.live_segments() == ()

    def test_reap_catches_orphaned_segments(self):
        matrix, y = small_dataset()
        arena = shm.SharedArena()
        arena.publish(dataset_token(matrix, y), matrix, y)
        assert shm.reap() == 1
        assert shm.live_segments() == ()

    def test_publish_returns_none_when_shm_broken(self, monkeypatch):
        class Broken:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("no shm here")

        monkeypatch.setattr(shm, "_shared_memory", lambda: Broken())
        matrix, y = small_dataset()
        arena = shm.SharedArena()
        assert arena.publish(dataset_token(matrix, y), matrix, y) is None
        assert shm.live_segments() == ()


class TestTokenMemo:
    def test_memoized_on_the_live_objects(self):
        from repro.runtime import folds as folds_mod
        matrix, y = small_dataset()
        token = dataset_token(matrix, y)
        assert folds_mod._TOKEN_MEMO[(id(matrix), id(y))] == token
        assert dataset_token(matrix, y) == token

    def test_memo_entry_dies_with_the_arrays(self):
        from repro.runtime import folds as folds_mod
        matrix, y = small_dataset()
        key = (id(matrix), id(y))
        dataset_token(matrix, y)
        assert key in folds_mod._TOKEN_MEMO
        del matrix
        assert key not in folds_mod._TOKEN_MEMO

    def test_different_objects_same_content_same_token(self):
        matrix, y = small_dataset()
        assert dataset_token(matrix.copy(), y.copy()) == dataset_token(
            matrix, y)

    def test_non_contiguous_matrix_hashes_like_contiguous(self):
        matrix, y = small_dataset(m=40, n=12)
        strided = np.asfortranarray(matrix)
        assert dataset_token(strided, y) == dataset_token(matrix, y)


class TestTransportEquivalence:
    def test_shm_pickle_and_serial_identical(self):
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=6, folds=5, seed=3)
        serial = cross_validated_sse(matrix, y, config=config, jobs=1)
        via_shm = run_parallel_folds(matrix, y, config, jobs=4, shm=True)
        via_pickle = run_parallel_folds(matrix, y, config, jobs=4,
                                        shm=False)
        np.testing.assert_array_equal(serial, via_shm)
        np.testing.assert_array_equal(serial, via_pickle)
        # The published arena stays warm in the pool's cache (owned, not
        # leaked — the fixture proves teardown clears it).
        assert len(shm.live_segments()) == len(pool_mod.arena_cache()) == 1

    def test_csr_dataset_over_shm_identical(self):
        matrix, y = small_dataset()
        sparse = CSRMatrix.from_dense(matrix)
        config = AnalysisConfig(k_max=5, folds=4, seed=7)
        serial = cross_validated_sse(sparse, y, config=config, jobs=1)
        parallel = run_parallel_folds(sparse, y, config, jobs=3, shm=True)
        np.testing.assert_array_equal(serial, parallel)
        assert len(shm.live_segments()) == len(pool_mod.arena_cache()) == 1

    def test_publish_failure_degrades_to_pickle_transport(self,
                                                          monkeypatch):
        """shm unavailable -> the pickled initializer path, same floats."""
        monkeypatch.setattr(shm.SharedArena, "publish",
                            lambda self, token, matrix, y: None)
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=5, folds=4, seed=3)
        result = run_parallel_folds(matrix, y, config, jobs=3, shm=True)
        serial = cross_validated_sse(matrix, y, config=config, jobs=1)
        np.testing.assert_array_equal(serial, result)
        assert shm.live_segments() == ()


class TestFailurePaths:
    def test_fold_job_raising_in_pool_reports_and_unlinks(self):
        """A fold job that blows up inside a worker surfaces its error
        (the sibling job still completes) and the arena still unlinks
        every segment."""
        from repro.runtime import folds as folds_mod
        from repro.runtime.scheduler import run_jobs

        matrix, y = small_dataset()
        token = dataset_token(matrix, y)
        folds_mod.publish_dataset(token, matrix, y)
        try:
            with shm.SharedArena() as arena:
                handle = arena.publish(token, matrix, y)

                def spec(fold_index):
                    return FoldSpec(dataset_token=token,
                                    fold_index=fold_index,
                                    n_points=len(y), folds=5, seed=3,
                                    k_max=6, min_leaf=1)

                good, bad = run_jobs([spec(0), spec(99)], jobs=2,
                                     cache=NullCache(),
                                     initializer=_init_worker_shm,
                                     initargs=(handle,))
                assert good.ok
                assert not bad.ok
                assert "IndexError" in bad.error
        finally:
            folds_mod._DATASETS.pop(token, None)
        assert shm.live_segments() == ()

    def test_attach_failure_falls_back_to_parent_serial(self, monkeypatch):
        """A worker that cannot attach the segment raises its setup hook
        (WorkerSetupError); the scheduler recomputes those folds in the
        parent — without poisoning the healthy pool — and results stay
        identical."""
        def refuse(handle):
            raise OSError("segment vanished")

        monkeypatch.setattr(shm, "attach_dataset", refuse)
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=6, folds=5, seed=3)
        result = run_parallel_folds(matrix, y, config, jobs=2, shm=True)
        serial = cross_validated_sse(matrix, y, config=config, jobs=1)
        np.testing.assert_array_equal(serial, result)
        assert len(shm.live_segments()) == len(pool_mod.arena_cache()) == 1

    def test_scheduler_crash_unlinks_arena(self, monkeypatch):
        """An abnormal scheduler exit still reaches the arena's finally."""
        from repro.runtime import scheduler

        def explode(*args, **kwargs):
            assert len(shm.live_segments()) == 1  # published before crash
            raise RuntimeError("scheduler died")

        monkeypatch.setattr(scheduler, "run_jobs", explode)
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=4, folds=4, seed=3)
        with pytest.raises(RuntimeError, match="scheduler died"):
            run_parallel_folds(matrix, y, config, jobs=4, shm=True)
        assert shm.live_segments() == ()

    def test_no_segment_files_left_in_dev_shm(self):
        """Belt and braces: the OS view agrees nothing outlives the
        pool shutdown."""
        import os
        from pathlib import Path

        dev_shm = Path("/dev/shm")
        if not dev_shm.is_dir():
            pytest.skip("no /dev/shm on this platform")
        pid = os.getpid()
        matrix, y = small_dataset()
        config = AnalysisConfig(k_max=5, folds=4, seed=3)
        run_parallel_folds(matrix, y, config, jobs=2, shm=True)
        # While the pool is warm the cached segment is visible — owned.
        cached = [p.name
                  for p in dev_shm.glob(f"{shm.SEGMENT_PREFIX}-{pid}-*")]
        assert len(cached) == len(pool_mod.arena_cache())
        # The atexit path (exercised eagerly) must leave the OS clean.
        pool_mod.shutdown_default()
        mine = [p.name for p in dev_shm.glob(f"{shm.SEGMENT_PREFIX}-{pid}-*")]
        assert mine == []
