"""Tests for the regression-tree vs k-means comparison (Section 4.6)."""

import numpy as np

from repro.core.comparison import compare_methods, kmeans_relative_errors
from repro.trace.eipv import EIPVDataset


def cpi_driven_dataset(m=60, seed=0):
    """EIPVs whose *small count differences* carry the CPI signal.

    Two code-identical phases differ only in one EIP's count; CPI follows
    that count.  A CPI-supervised tree finds the wall; CPI-blind k-means
    on normalized vectors struggles — the paper's Section 4.6 setup.
    """
    rng = np.random.default_rng(seed)
    matrix = np.zeros((m, 8), dtype=np.int32)
    y = np.empty(m)
    for i in range(m):
        hot = rng.integers(0, 2)
        # Same regions active either way; only feature 0's count differs.
        matrix[i, 0] = 5 if hot else 4
        for j in range(1, 8):
            matrix[i, j] = 10 + rng.integers(0, 2)
        y[i] = (3.0 if hot else 1.0) + rng.normal(0, 0.05)
    return EIPVDataset(matrix=matrix, cpis=y,
                       eip_index=np.arange(8) * 16,
                       interval_instructions=1000,
                       workload_name="cpi-driven")


class TestComparison:
    def test_tree_beats_kmeans_on_cpi_driven_data(self):
        dataset = cpi_driven_dataset()
        comparison = compare_methods(dataset, k_max=12, seed=0,
                                     kmeans_k_values=[2, 4, 8])
        assert comparison.tree_re < comparison.kmeans_re
        assert comparison.improvement > 0.3

    def test_improvement_zero_when_kmeans_re_zero(self):
        from repro.core.comparison import MethodComparison
        comparison = MethodComparison(workload="w", tree_re=0.0, tree_k=1,
                                      kmeans_re=0.0, kmeans_k=1)
        assert comparison.improvement == 0.0

    def test_kmeans_relative_errors_shape(self):
        dataset = cpi_driven_dataset()
        errors = kmeans_relative_errors(dataset.matrix, dataset.cpis,
                                        [2, 4], folds=5, seed=0)
        assert set(errors) == {2, 4}
        assert all(v >= 0 for v in errors.values())

    def test_kmeans_zero_variance_target(self):
        dataset = cpi_driven_dataset()
        errors = kmeans_relative_errors(dataset.matrix,
                                        np.full(len(dataset.cpis), 2.0),
                                        [2], folds=5)
        assert errors[2] == 0.0

    def test_kmeans_can_find_structure_when_vectors_differ(self):
        """Sanity: when phases have distinct EIPVs, k-means also predicts
        CPI well — the tree's advantage is specific to subtle signals."""
        rng = np.random.default_rng(1)
        m = 60
        matrix = np.zeros((m, 6), dtype=np.int32)
        y = np.empty(m)
        for i in range(m):
            phase = i % 2
            matrix[i, phase * 3:(phase + 1) * 3] = 10
            y[i] = 1.0 + 2.0 * phase + rng.normal(0, 0.05)
        errors = kmeans_relative_errors(matrix.astype(float), y, [2],
                                        folds=5, seed=1)
        assert errors[2] < 0.2
