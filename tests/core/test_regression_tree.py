"""Tests for the regression tree: paper example, invariants, equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression_tree import RegressionTreeSequence
from repro.sparse import CSRMatrix
from repro.experiments.example_tree import (
    FIGURE1_CHAMBERS,
    TABLE1_CPIS,
    TABLE1_EIPVS,
)


class TestWorkedExample:
    """The paper's Table 1 / Figure 1 example, exactly."""

    def fitted(self):
        return RegressionTreeSequence(k_max=4).fit(TABLE1_EIPVS,
                                                   TABLE1_CPIS)

    def test_root_split_is_eip0_at_20(self):
        tree = self.fitted()
        assert tree.root.feature == 0
        assert tree.root.threshold == 20.0

    def test_left_subtree_splits_on_eip2_at_60(self):
        tree = self.fitted()
        assert tree.root.left.feature == 2
        assert tree.root.left.threshold == 60.0

    def test_right_subtree_splits_on_eip1_at_0(self):
        tree = self.fitted()
        assert tree.root.right.feature == 1
        assert tree.root.right.threshold == 0.0

    def test_chambers_match_figure1(self):
        tree = self.fitted()
        got = {(tuple(sorted(int(i) for i in leaf.rows)),
                round(leaf.value, 2)) for leaf in tree.leaves(4)}
        expected = {(tuple(sorted(m)), v) for m, v in FIGURE1_CHAMBERS}
        assert got == expected

    def test_t2_applies_only_root_split(self):
        tree = self.fitted()
        leaves = tree.leaves(2)
        assert len(leaves) == 2
        sizes = sorted(leaf.n for leaf in leaves)
        assert sizes == [4, 4]

    def test_t1_is_global_mean(self):
        tree = self.fitted()
        predictions = tree.predict(TABLE1_EIPVS, k=1)
        assert predictions == pytest.approx(
            np.full(8, TABLE1_CPIS.mean()))


class TestInvariants:
    def random_data(self, seed, m=40, n=12, density=0.4):
        rng = np.random.default_rng(seed)
        matrix = ((rng.random((m, n)) < density)
                  * rng.integers(1, 30, (m, n))).astype(float)
        y = rng.random(m) * 4
        return matrix, y

    def test_children_partition_parent(self):
        matrix, y = self.random_data(0)
        tree = RegressionTreeSequence(k_max=10).fit(matrix, y)

        def walk(node):
            if node.feature is None:
                return
            left = set(node.left.rows.tolist())
            right = set(node.right.rows.tolist())
            assert left | right == set(node.rows.tolist())
            assert not (left & right)
            walk(node.left)
            walk(node.right)

        walk(tree.root)

    def test_split_reduces_sse(self):
        matrix, y = self.random_data(1)
        tree = RegressionTreeSequence(k_max=10).fit(matrix, y)

        def walk(node):
            if node.feature is None:
                return
            assert node.left.sse + node.right.sse < node.sse + 1e-9
            walk(node.left)
            walk(node.right)

        walk(tree.root)

    def test_training_sse_decreases_with_k(self):
        matrix, y = self.random_data(2)
        tree = RegressionTreeSequence(k_max=15).fit(matrix, y)
        sses = [tree.training_sse(k) for k in range(1, tree.max_k() + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(sses, sses[1:]))

    def test_leaf_count_equals_k(self):
        matrix, y = self.random_data(3)
        tree = RegressionTreeSequence(k_max=12).fit(matrix, y)
        for k in range(1, tree.max_k() + 1):
            assert len(tree.leaves(k)) == k

    def test_prediction_is_chamber_mean(self):
        matrix, y = self.random_data(4)
        tree = RegressionTreeSequence(k_max=8).fit(matrix, y)
        for k in (1, 4, tree.max_k()):
            for leaf in tree.leaves(k):
                member_mean = y[leaf.rows].mean()
                assert leaf.value == pytest.approx(member_mean)

    def test_constant_target_no_splits(self):
        matrix, _ = self.random_data(5)
        tree = RegressionTreeSequence(k_max=10).fit(
            matrix, np.full(len(matrix), 2.5))
        assert tree.max_k() == 1
        assert tree.predict(matrix, 1) == pytest.approx(np.full(len(matrix),
                                                                2.5))

    def test_min_leaf_respected(self):
        matrix, y = self.random_data(6, m=60)
        tree = RegressionTreeSequence(k_max=30, min_leaf=5).fit(matrix, y)
        for leaf in tree.leaves():
            assert leaf.n >= 5

    def test_perfectly_separable_data_zero_error(self):
        # CPI determined by whether feature 0 is used.
        matrix = np.zeros((20, 3))
        matrix[:10, 0] = 5
        matrix[10:, 1] = 7
        y = np.where(matrix[:, 0] > 0, 2.0, 1.0)
        tree = RegressionTreeSequence(k_max=4).fit(matrix, y)
        assert tree.training_sse() == pytest.approx(0.0)
        assert tree.predict(matrix) == pytest.approx(y)

    def test_predict_all_k_matches_predict(self):
        matrix, y = self.random_data(7)
        tree = RegressionTreeSequence(k_max=12).fit(matrix, y)
        allk = tree.predict_all_k(matrix)
        for k in range(1, tree.max_k() + 1):
            assert allk[:, k - 1] == pytest.approx(tree.predict(matrix, k))

    def test_unseen_points_route_to_leaves(self):
        matrix, y = self.random_data(8)
        tree = RegressionTreeSequence(k_max=8).fit(matrix, y)
        probe = np.full((1, matrix.shape[1]), 1000.0)
        prediction = float(tree.predict(probe)[0])
        leaf_values = [leaf.value for leaf in tree.leaves()]
        assert min(abs(prediction - v) for v in leaf_values) < 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTreeSequence(k_max=0)
        with pytest.raises(ValueError):
            RegressionTreeSequence(min_leaf=0)
        with pytest.raises(ValueError):
            RegressionTreeSequence().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RegressionTreeSequence().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(RuntimeError):
            RegressionTreeSequence().predict(np.zeros((1, 2)))


def _brute_force_best_sse(matrix, y, min_leaf=1):
    """Exhaustive O(m^2 n) split search: the oracle for the vectorized one.

    Tries every (feature, distinct value) wall and returns the smallest
    total children SSE, or inf when no wall leaves min_leaf on each side.
    """
    best = np.inf
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        for t in np.unique(column)[:-1]:
            left = column <= t
            if left.sum() < min_leaf or (~left).sum() < min_leaf:
                continue
            sse = (((y[left] - y[left].mean()) ** 2).sum()
                   + ((y[~left] - y[~left].mean()) ** 2).sum())
            best = min(best, float(sse))
    return best


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), m=st.integers(4, 30),
       n=st.integers(1, 10))
def test_root_split_matches_brute_force(seed, m, n):
    """The vectorized segmented split search agrees exactly with an
    exhaustive every-wall reference."""
    rng = np.random.default_rng(seed)
    matrix = ((rng.random((m, n)) < 0.45)
              * rng.integers(1, 8, (m, n))).astype(float)
    y = np.round(rng.random(m) * 3, 3)
    tree = RegressionTreeSequence(k_max=2).fit(matrix, y)

    best_sse = _brute_force_best_sse(matrix, y)
    if tree.root.feature is None:
        # No useful split found: reference must agree (no split can beat
        # the parent SSE by more than floating noise).
        parent_sse = float(((y - y.mean()) ** 2).sum())
        assert best_sse == np.inf or best_sse >= parent_sse - 1e-9
    else:
        children_sse = tree.root.left.sse + tree.root.right.sse
        assert children_sse == pytest.approx(best_sse, abs=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), min_leaf=st.integers(1, 4))
def test_root_split_respects_min_leaf_vs_brute_force(seed, min_leaf):
    rng = np.random.default_rng(seed)
    matrix = ((rng.random((20, 5)) < 0.5)
              * rng.integers(1, 6, (20, 5))).astype(float)
    y = np.round(rng.random(20) * 3, 3)
    tree = RegressionTreeSequence(k_max=2, min_leaf=min_leaf).fit(matrix, y)
    best_sse = _brute_force_best_sse(matrix, y, min_leaf=min_leaf)
    if tree.root.feature is not None:
        children_sse = tree.root.left.sse + tree.root.right.sse
        assert children_sse == pytest.approx(best_sse, abs=1e-8)
        assert min(tree.root.left.n, tree.root.right.n) >= min_leaf


def _tree_signature(tree):
    signature = []

    def walk(node):
        if node is None:
            return
        signature.append((node.split_rank, node.feature, node.threshold,
                          node.value, node.sse, node.rows.tolist()))
        walk(node.left)
        walk(node.right)

    walk(tree.root)
    return signature


class TestSearchModesAndSparse:
    """Node-local, full-scan and CSR-input fits are bit-identical."""

    def random_data(self, seed, m=45, n=25, density=0.3):
        rng = np.random.default_rng(seed)
        matrix = ((rng.random((m, n)) < density)
                  * rng.integers(1, 20, (m, n))).astype(float)
        y = rng.random(m) * 4
        return matrix, y

    @pytest.mark.parametrize("seed", range(5))
    def test_node_local_matches_full_scan(self, seed):
        matrix, y = self.random_data(seed)
        node = RegressionTreeSequence(k_max=12).fit(matrix, y)
        full = RegressionTreeSequence(k_max=12,
                                      split_search="full").fit(matrix, y)
        assert _tree_signature(node) == _tree_signature(full)

    @pytest.mark.parametrize("seed", range(5))
    def test_csr_input_matches_dense(self, seed):
        matrix, y = self.random_data(seed + 100)
        dense = RegressionTreeSequence(k_max=12).fit(matrix, y)
        sparse = RegressionTreeSequence(k_max=12).fit(
            CSRMatrix.from_dense(matrix), y)
        assert _tree_signature(dense) == _tree_signature(sparse)

    def test_predict_matches_on_csr_input(self):
        matrix, y = self.random_data(7)
        tree = RegressionTreeSequence(k_max=10).fit(matrix, y)
        probe, _ = self.random_data(8, m=30)
        dense_all = tree.predict_all_k(probe)
        sparse_all = tree.predict_all_k(CSRMatrix.from_dense(probe))
        assert np.array_equal(dense_all, sparse_all)
        assert np.array_equal(tree.predict(probe, 4),
                              tree.predict(CSRMatrix.from_dense(probe), 4))

    def test_predict_all_k_matches_leaf_walk(self):
        matrix, y = self.random_data(9)
        tree = RegressionTreeSequence(k_max=10).fit(matrix, y)
        probe, _ = self.random_data(10, m=20)
        all_k = tree.predict_all_k(probe)
        for k in range(1, tree.max_k() + 1):
            reference = np.array([tree.leaf_for(row, k).value
                                  for row in probe])
            assert np.array_equal(all_k[:, k - 1], reference)

    def test_store_indices_released_after_fit(self):
        matrix, y = self.random_data(11)
        tree = RegressionTreeSequence(k_max=8).fit(matrix, y)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert node.store_idx is None
            if node.left is not None:
                stack.extend([node.left, node.right])

    def test_invalid_split_search_rejected(self):
        with pytest.raises(ValueError):
            RegressionTreeSequence(split_search="bogus")
