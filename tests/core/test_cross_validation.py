"""Tests for the 10-fold cross-validation and RE curve."""

import numpy as np
import pytest

from repro.core.cross_validation import (
    RECurve,
    cross_validated_sse,
    fold_indices,
    relative_error_curve,
)


def phased_dataset(m=80, n=10, noise=0.0, seed=0):
    """CPI fully determined by which feature block is hot."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((m, n))
    y = np.empty(m)
    for i in range(m):
        phase = i % 4
        matrix[i, phase] = 10 + rng.integers(0, 3)
        y[i] = [1.0, 2.0, 3.0, 4.0][phase] + rng.normal(0, noise)
    return matrix, y


def noise_dataset(m=80, n=10, seed=0):
    """CPI independent of the EIPVs."""
    rng = np.random.default_rng(seed)
    matrix = (rng.random((m, n)) < 0.4) * rng.integers(1, 20, (m, n))
    y = rng.normal(2.0, 0.5, m)
    return matrix.astype(float), y


class TestFolds:
    def test_partition_is_exact(self):
        rng = np.random.default_rng(0)
        folds = fold_indices(53, 10, rng)
        combined = np.concatenate(folds)
        assert sorted(combined.tolist()) == list(range(53))
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            fold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            fold_indices(5, 10, rng)


class TestRECurve:
    def test_predictable_data_low_re(self):
        matrix, y = phased_dataset(noise=0.02)
        curve = relative_error_curve(matrix, y, k_max=15)
        assert curve.re_kopt < 0.1
        assert curve.k_opt <= 6
        assert curve.explained_fraction > 0.85

    def test_unpredictable_data_re_near_or_above_one(self):
        matrix, y = noise_dataset()
        curve = relative_error_curve(matrix, y, k_max=20)
        assert curve.re_kopt > 0.8
        # Complex models overfit: the curve's tail exceeds its start.
        assert curve.re_inf >= curve.re[0] - 0.1

    def test_re_at_k1_close_to_one(self):
        """T_1 predicts the fold-train mean: RE ~ 1 by construction."""
        for maker in (phased_dataset, noise_dataset):
            matrix, y = maker()
            curve = relative_error_curve(matrix, y, k_max=3)
            assert curve.re[0] == pytest.approx(1.0, abs=0.15)

    def test_zero_variance_target(self):
        matrix, _ = noise_dataset()
        curve = relative_error_curve(matrix, np.full(len(matrix), 1.5),
                                     k_max=5)
        assert curve.re == pytest.approx(np.zeros(5))
        assert curve.re_kopt == 0.0

    def test_k_opt_is_smallest_within_tolerance(self):
        matrix, y = phased_dataset(noise=0.01)
        curve = relative_error_curve(matrix, y, k_max=20)
        re_min = curve.re.min()
        assert curve.re[curve.k_opt - 1] <= re_min + 0.005
        for k in range(1, curve.k_opt):
            assert curve.re[k - 1] > re_min + 0.005

    def test_seed_changes_folds_but_not_conclusion(self):
        matrix, y = phased_dataset(noise=0.05)
        re1 = relative_error_curve(matrix, y, seed=1, k_max=10).re_kopt
        re2 = relative_error_curve(matrix, y, seed=2, k_max=10).re_kopt
        assert abs(re1 - re2) < 0.15

    def test_curve_properties(self):
        matrix, y = phased_dataset()
        curve = relative_error_curve(matrix, y, k_max=12)
        assert isinstance(curve, RECurve)
        assert len(curve.re) == 12
        assert list(curve.k_values) == list(range(1, 13))
        rows = curve.as_rows()
        assert rows[0][0] == 1
        assert rows[-1][0] == 12

    def test_sse_monotone_in_information(self):
        """More noise -> more cross-validated error."""
        clean_matrix, clean_y = phased_dataset(noise=0.01, seed=3)
        noisy_matrix, noisy_y = phased_dataset(noise=0.8, seed=3)
        clean = cross_validated_sse(clean_matrix, clean_y, k_max=8)
        noisy = cross_validated_sse(noisy_matrix, noisy_y, k_max=8)
        assert noisy[4] > clean[4]

    def test_folds_fewer_than_points_rejected(self):
        matrix, y = phased_dataset(m=6)
        with pytest.raises(ValueError):
            relative_error_curve(matrix, y, folds=10)


class TestParallelFolds:
    def test_jobs_match_serial_bit_for_bit(self):
        """Fold fan-out is a performance knob: same bytes either way."""
        matrix, y = phased_dataset(m=60, n=8, noise=0.1)
        serial = cross_validated_sse(matrix, y, k_max=10, jobs=1)
        parallel = cross_validated_sse(matrix, y, k_max=10, jobs=4)
        np.testing.assert_array_equal(serial, parallel)

    def test_jobs_match_serial_on_sparse_input(self):
        from repro.sparse import CSRMatrix
        matrix, y = phased_dataset(m=60, n=8, noise=0.1)
        sparse = CSRMatrix.from_dense(matrix)
        serial = cross_validated_sse(sparse, y, k_max=10, jobs=1)
        parallel = cross_validated_sse(sparse, y, k_max=10, jobs=3)
        np.testing.assert_array_equal(serial, parallel)

    def test_curve_identical_through_jobs(self):
        matrix, y = phased_dataset(m=60, n=8, noise=0.1)
        one = relative_error_curve(matrix, y, k_max=10, jobs=1)
        four = relative_error_curve(matrix, y, k_max=10, jobs=4)
        np.testing.assert_array_equal(one.re, four.re)
        assert one.k_opt == four.k_opt
        assert one.re_kopt == four.re_kopt

    def test_default_cv_jobs_is_scoped(self):
        from repro.core.cross_validation import set_default_cv_jobs
        matrix, y = phased_dataset(m=40, n=6, noise=0.1)
        serial = cross_validated_sse(matrix, y, k_max=6)
        previous = set_default_cv_jobs(2)
        try:
            assert previous == 1
            fanned = cross_validated_sse(matrix, y, k_max=6)
        finally:
            set_default_cv_jobs(previous)
        np.testing.assert_array_equal(serial, fanned)
        # An explicit jobs=1 overrides the process default.
        previous = set_default_cv_jobs(4)
        try:
            explicit = cross_validated_sse(matrix, y, k_max=6, jobs=1)
        finally:
            set_default_cv_jobs(previous)
        np.testing.assert_array_equal(serial, explicit)
