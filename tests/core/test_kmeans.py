"""Tests for the from-scratch k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kmeans import (
    kmeans,
    l1_normalize,
    predict_cpi_by_cluster,
    prepare_eipvs,
    random_projection,
)


def blobs(k=3, per=20, dim=5, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5, 5, (k, dim))
    points = np.vstack([
        center + rng.normal(0, spread, (per, dim)) for center in centers])
    labels = np.repeat(np.arange(k), per)
    return points, labels


class TestNormalization:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 10, (8, 5)).astype(float)
        matrix[0] = 0  # empty row stays zero
        normalized = l1_normalize(matrix)
        sums = normalized.sum(axis=1)
        assert sums[1:] == pytest.approx(np.ones(7))
        assert sums[0] == pytest.approx(0.0)

    def test_projection_shape(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((10, 100))
        projected = random_projection(matrix, 15, rng)
        assert projected.shape == (10, 15)

    def test_projection_noop_when_dim_large(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((10, 5))
        assert random_projection(matrix, 15, rng).shape == (10, 5)

    def test_projection_preserves_relative_distances(self):
        rng = np.random.default_rng(1)
        points, _ = blobs(k=2, per=10, dim=50, spread=0.01)
        projected = random_projection(points, 15, rng)
        within = np.linalg.norm(projected[0] - projected[1])
        across = np.linalg.norm(projected[0] - projected[15])
        assert across > within

    def test_prepare_eipvs_pipeline(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 40, (12, 200)).astype(float)
        points = prepare_eipvs(matrix, rng, projection_dim=15)
        assert points.shape == (12, 15)
        assert prepare_eipvs(matrix, rng, projection_dim=None).shape \
            == (12, 200)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, truth = blobs(k=3, per=25)
        result = kmeans(points, 3, np.random.default_rng(0))
        # Same-blob points share a cluster label.
        for blob_id in range(3):
            labels = result.labels[truth == blob_id]
            assert len(set(labels.tolist())) == 1

    def test_assignment_minimizes_distance(self):
        points, _ = blobs(k=3, per=15)
        result = kmeans(points, 3, np.random.default_rng(1))
        distances = ((points[:, None, :]
                      - result.centroids[None, :, :]) ** 2).sum(axis=2)
        assert (result.labels == distances.argmin(axis=1)).all()

    def test_inertia_decreases_with_k(self):
        points, _ = blobs(k=4, per=15, spread=0.5)
        rng = np.random.default_rng(2)
        inertias = [kmeans(points, k, rng).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_n_zero_inertia(self):
        points, _ = blobs(k=2, per=3)
        result = kmeans(points, len(points), np.random.default_rng(0))
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        points, _ = blobs()
        with pytest.raises(ValueError):
            kmeans(points, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            kmeans(points, len(points) + 1, np.random.default_rng(0))

    def test_assign_new_points(self):
        points, _ = blobs(k=2, per=20, spread=0.01)
        result = kmeans(points, 2, np.random.default_rng(0))
        new_labels = result.assign(points[:5] + 0.001)
        assert (new_labels == result.labels[:5]).all()


class TestClusterCPIPrediction:
    def test_prediction_uses_cluster_means(self):
        points, truth = blobs(k=2, per=20, spread=0.01)
        cpis = np.where(truth == 0, 1.0, 3.0)
        predictions = predict_cpi_by_cluster(
            points, cpis, points, 2, np.random.default_rng(0))
        assert predictions == pytest.approx(cpis)

    def test_cpi_blind_clustering_fails_when_code_identical(self):
        """Identical EIPVs with different CPIs: k-means cannot separate —
        the paper's core criticism."""
        rng = np.random.default_rng(0)
        points = np.ones((40, 5)) + rng.normal(0, 1e-6, (40, 5))
        cpis = np.array([1.0, 3.0] * 20)
        predictions = predict_cpi_by_cluster(points, cpis, points, 2, rng)
        errors = np.abs(predictions - cpis)
        assert errors.mean() > 0.5


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), k=st.integers(1, 6))
def test_kmeans_invariants(seed, k):
    rng = np.random.default_rng(seed)
    points = rng.random((30, 4))
    result = kmeans(points, k, rng)
    assert result.centroids.shape == (k, 4)
    assert len(result.labels) == 30
    assert set(result.labels.tolist()) <= set(range(k))
    assert result.inertia >= 0
