"""Tests for quadrant classification and the predictability facade."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.predictability import analyze_predictability
from repro.core.quadrant import (
    RECOMMENDED_SAMPLING,
    RE_THRESHOLD,
    VARIANCE_THRESHOLD,
    Quadrant,
    classify,
    classify_result,
)
from repro.trace.eipv import EIPVDataset


class TestClassify:
    @pytest.mark.parametrize("variance,re,expected", [
        (0.001, 0.5, Quadrant.Q1),
        (0.001, 0.05, Quadrant.Q2),
        (0.5, 0.9, Quadrant.Q3),
        (0.5, 0.05, Quadrant.Q4),
    ])
    def test_four_quadrants(self, variance, re, expected):
        assert classify(variance, re) is expected

    def test_thresholds_are_papers(self):
        assert VARIANCE_THRESHOLD == 0.01
        assert RE_THRESHOLD == 0.15

    def test_boundary_semantics(self):
        # Exactly at the variance threshold counts as low variance
        # (ODB-C's var of 0.01 is Q-I in the paper).
        assert classify(0.01, 0.5) is Quadrant.Q1
        # Exactly at the RE threshold counts as strong phases
        # (Q13's RE of 0.15 is predictable in the paper).
        assert classify(0.5, 0.15) is Quadrant.Q4

    def test_custom_thresholds(self):
        assert classify(0.02, 0.5, variance_threshold=0.05) is Quadrant.Q1

    def test_validation(self):
        with pytest.raises(ValueError):
            classify(-0.1, 0.5)
        with pytest.raises(ValueError):
            classify(0.1, -0.5)

    def test_recommended_sampling_complete(self):
        assert set(RECOMMENDED_SAMPLING) == set(Quadrant)
        assert RECOMMENDED_SAMPLING[Quadrant.Q4] == "phase_based"
        assert RECOMMENDED_SAMPLING[Quadrant.Q3] == "stratified"

    def test_quadrant_properties(self):
        assert Quadrant.Q4.high_variance and Quadrant.Q4.strong_phases
        assert not Quadrant.Q1.high_variance
        assert not Quadrant.Q1.strong_phases
        assert Quadrant.Q2.strong_phases and not Quadrant.Q2.high_variance

    def test_classify_result_carries_recommendation(self):
        result = classify_result("w", 0.5, 0.05, k_opt=4)
        assert result.quadrant is Quadrant.Q4
        assert result.recommended_sampling == "phase_based"


@given(variance=st.floats(0, 10), re=st.floats(0, 3))
def test_classification_total_and_consistent(variance, re):
    quadrant = classify(variance, re)
    assert quadrant.high_variance == (variance > VARIANCE_THRESHOLD)
    assert quadrant.strong_phases == (re <= RE_THRESHOLD)


class TestAnalyzeFacade:
    def synthetic_dataset(self, phased=True, m=60, seed=0):
        rng = np.random.default_rng(seed)
        matrix = np.zeros((m, 6), dtype=np.int32)
        y = np.empty(m)
        for i in range(m):
            phase = i % 3
            matrix[i, phase] = 10
            matrix[i, 3 + rng.integers(0, 3)] = 2
            if phased:
                y[i] = 1.0 + phase + rng.normal(0, 0.02)
            else:
                y[i] = 2.0 + rng.normal(0, 0.6)
        return EIPVDataset(matrix=matrix, cpis=y,
                           eip_index=np.arange(6) * 16 + 0x1000,
                           interval_instructions=1000,
                           workload_name="synthetic")

    def test_phased_dataset_lands_in_q4(self):
        result = analyze_predictability(self.synthetic_dataset(True),
                                        k_max=10)
        assert result.quadrant is Quadrant.Q4
        assert result.re_kopt < 0.1
        assert result.explained_fraction > 0.8

    def test_noise_dataset_lands_in_q3(self):
        result = analyze_predictability(self.synthetic_dataset(False),
                                        k_max=10)
        assert result.quadrant is Quadrant.Q3
        assert result.re_kopt > 0.5

    def test_summary_format(self):
        result = analyze_predictability(self.synthetic_dataset(True),
                                        k_max=5)
        line = result.summary()
        assert "synthetic" in line
        assert "Q-" in line
