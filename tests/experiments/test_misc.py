"""Small coverage tests: runner CLI, threading rows, registry helpers."""

import pytest

from repro.analysis.threading_stats import threading_row
from repro.experiments.runner import main as runner_main
from repro.trace.threads import ThreadingStats
from repro.workloads.registry import get_workload, paper_quadrant
from repro.workloads.scale import TINY


class TestRunnerMain:
    def test_main_runs_e1(self, capsys):
        assert runner_main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "worked example" in out

    def test_main_unknown_id_raises(self):
        with pytest.raises(KeyError):
            runner_main(["e99"])


class TestThreadingRow:
    def stats(self):
        return ThreadingStats(
            context_switches=100,
            context_switches_per_second=2567.4,
            os_time_share=0.146,
            n_threads=7,
            thread_sample_share={0: 0.5, 1: 0.5},
        )

    def test_row_without_paper_value(self):
        row = threading_row("odbc", self.stats())
        assert row == ["odbc", 2567, "14.6%", 7]

    def test_row_with_paper_value(self):
        row = threading_row("odbc", self.stats(), paper_switch_rate=2600)
        assert row[-1] == 2600

    def test_stats_str(self):
        text = str(self.stats())
        assert "ctx-switches/s" in text
        assert "OS time" in text


class TestRegistryHelpers:
    def test_paper_quadrant(self):
        workload = get_workload("odbc", TINY)
        assert paper_quadrant(workload) == "Q-I"

    def test_all_metadata_has_quadrants(self):
        from repro.workloads.registry import workload_names
        valid = {"Q-I", "Q-II", "Q-III", "Q-IV"}
        for name in workload_names():
            assert paper_quadrant(get_workload(name, TINY)) in valid
