"""Tests for the experiment modules (fast variants of each)."""

import pytest

from repro.experiments import (
    example_tree,
    fig2_odbc_sjas,
    robustness,
    table2_quadrants,
)
from repro.experiments.common import RunConfig, collect, collect_cached
from repro.experiments.paper_targets import (
    ALL_TARGETS,
    TABLE2_COUNTS,
    targets_for,
)
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment
from repro.workloads.scale import TINY


class TestWorkedExample:
    def test_matches_figure1(self):
        result = example_tree.run_example()
        assert result.matches_figure1
        assert result.root_feature == 0
        assert result.root_threshold == 20.0

    def test_render_mentions_status(self):
        assert "MATCHES Figure 1" in example_tree.render()


class TestCommon:
    def test_collect_produces_consistent_dataset(self):
        trace, dataset = collect(RunConfig("spec.gzip", n_intervals=10,
                                           seed=0, scale=TINY))
        assert dataset.n_intervals == 10
        assert dataset.workload_name == "spec.gzip"
        assert len(trace) == 1000  # 10 intervals x 100 samples

    def test_collect_cached_memoizes(self):
        config = RunConfig("spec.gzip", n_intervals=5, seed=1, scale=TINY)
        first = collect_cached(config)
        second = collect_cached(config)
        assert first[0] is second[0]

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            collect(RunConfig("spec.gzip", machine="cray", scale=TINY))


class TestPaperTargets:
    def test_targets_are_indexed(self):
        assert targets_for("fig2")
        assert targets_for("table2")
        assert not targets_for("nonexistent")

    def test_table2_counts_cover_fifty_workloads(self):
        total = sum(spec_count + dss_count + len(servers)
                    for spec_count, dss_count, servers
                    in TABLE2_COUNTS.values())
        assert total == 50

    def test_every_target_has_a_shape_check(self):
        for target in ALL_TARGETS:
            assert target.shape_check
            assert target.paper_value


class TestRunner:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {"e1", "e2", "e3", "e4", "e5", "e6",
                                    "e7", "e8", "e9", "e10", "e13",
                                    "e14"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("e99")

    def test_run_e1_via_runner(self):
        output = run_all(["e1"])
        assert "E1" in output
        assert "MATCHES" in output


class TestFastExperimentVariants:
    """Cheap-scale runs of the heavier experiments (shape checks only)."""

    def test_census_on_subset(self):
        result = table2_quadrants.run(
            workloads=["spec.art", "spec.gzip"], seed=7, k_max=15,
            n_intervals=60)
        assert result.total == 2
        by_name = {e.workload: e for e in result.entries}
        assert by_name["spec.art"].result.quadrant.value == "Q-IV"
        assert by_name["spec.gzip"].result.quadrant.value == "Q-I"
        text = table2_quadrants.render(result)
        assert "quadrant" in text

    def test_eipv_size_sweep_shape(self):
        result = robustness.eipv_size_sweep(workload="spec.art", seed=7,
                                            k_max=10)
        assert len(result.rows) == 3
        sizes = [row.interval_instructions for row in result.rows]
        assert sizes == [100_000_000, 50_000_000, 10_000_000]

    def test_fig2_result_fields(self):
        result = fig2_odbc_sjas.run(n_intervals=20, seed=7, k_max=10)
        assert len(result.odbc.re) == 10
        assert len(result.sjas.re) == 10
        text = fig2_odbc_sjas.render(result)
        assert "ODB-C" in text and "SjAS" in text
