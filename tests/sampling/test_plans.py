"""Tests for sampling plans and the four techniques."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.phase_based import phase_based_plan
from repro.sampling.plan import SamplingPlan, equal_weights
from repro.sampling.random_sampling import random_plan
from repro.sampling.stratified import stratified_plan
from repro.sampling.uniform import uniform_plan
from repro.trace.eipv import EIPVDataset


def phased_dataset(m=60, n_phases=3, seed=0, spread=1.0):
    rng = np.random.default_rng(seed)
    matrix = np.zeros((m, n_phases * 2), dtype=np.int32)
    y = np.empty(m)
    for i in range(m):
        phase = i % n_phases
        matrix[i, phase] = 10
        matrix[i, n_phases + rng.integers(0, n_phases)] = 1
        y[i] = 1.0 + spread * phase + rng.normal(0, 0.02)
    return EIPVDataset(matrix=matrix, cpis=y,
                       eip_index=np.arange(n_phases * 2) * 16,
                       interval_instructions=1000, workload_name="p")


class TestSamplingPlan:
    def test_estimate_is_weighted_mean(self):
        dataset = phased_dataset()
        plan = SamplingPlan(technique="t",
                            intervals=np.array([0, 1, 2]),
                            weights=np.array([0.5, 0.25, 0.25]))
        expected = (0.5 * dataset.cpis[0] + 0.25 * dataset.cpis[1]
                    + 0.25 * dataset.cpis[2])
        assert plan.estimate_cpi(dataset) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan("t", np.array([], dtype=int), np.array([]))
        with pytest.raises(ValueError):
            SamplingPlan("t", np.array([0]), np.array([0.5]))
        with pytest.raises(ValueError):
            SamplingPlan("t", np.array([0, 1]), np.array([1.5, -0.5]))

    def test_equal_weights(self):
        weights = equal_weights(4)
        assert weights == pytest.approx(np.full(4, 0.25))
        with pytest.raises(ValueError):
            equal_weights(0)


class TestUniform:
    def test_even_spacing(self):
        dataset = phased_dataset(m=100)
        plan = uniform_plan(dataset, 10)
        gaps = np.diff(plan.intervals)
        assert gaps.min() >= 9 and gaps.max() <= 11

    def test_budget_capped_at_intervals(self):
        dataset = phased_dataset(m=10)
        plan = uniform_plan(dataset, 100)
        assert plan.n_samples == 10

    def test_random_offset(self):
        dataset = phased_dataset(m=100)
        rng = np.random.default_rng(0)
        p1 = uniform_plan(dataset, 10, rng)
        p2 = uniform_plan(dataset, 10, rng)
        assert not np.array_equal(p1.intervals, p2.intervals)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_plan(phased_dataset(), 0)


class TestRandom:
    def test_no_replacement(self):
        dataset = phased_dataset(m=30)
        plan = random_plan(dataset, 20, np.random.default_rng(0))
        assert len(set(plan.intervals.tolist())) == 20

    def test_within_range(self):
        dataset = phased_dataset(m=30)
        plan = random_plan(dataset, 10, np.random.default_rng(1))
        assert plan.intervals.min() >= 0
        assert plan.intervals.max() < 30


class TestPhaseBased:
    def test_representatives_cover_phases(self):
        dataset = phased_dataset(m=60, n_phases=3)
        plan = phase_based_plan(dataset, 3, np.random.default_rng(0),
                                projection_dim=None)
        # One representative per phase: the plan's estimate should be
        # very close to the true mean.
        estimate = plan.estimate_cpi(dataset)
        assert estimate == pytest.approx(float(dataset.cpis.mean()),
                                         abs=0.1)

    def test_weights_reflect_cluster_sizes(self):
        # 3 phases with unequal populations 30/20/10.
        rng = np.random.default_rng(0)
        matrix = np.zeros((60, 3), dtype=np.int32)
        y = np.empty(60)
        sizes = [30, 20, 10]
        row = 0
        for phase, size in enumerate(sizes):
            for _ in range(size):
                matrix[row, phase] = 10
                y[row] = phase * 1.0
                row += 1
        dataset = EIPVDataset(matrix=matrix, cpis=y,
                              eip_index=np.arange(3) * 16,
                              interval_instructions=1000)
        plan = phase_based_plan(dataset, 3, rng, projection_dim=None)
        assert sorted(np.round(plan.weights * 60).astype(int).tolist()) \
            == [10, 20, 30]

    def test_budget_one(self):
        dataset = phased_dataset()
        plan = phase_based_plan(dataset, 1, np.random.default_rng(0))
        assert plan.n_samples == 1
        assert plan.weights[0] == pytest.approx(1.0)


class TestStratified:
    def test_high_variance_clusters_get_more_samples(self):
        # Phase 0: constant CPI. Phase 1: highly variable CPI.
        rng = np.random.default_rng(0)
        matrix = np.zeros((80, 2), dtype=np.int32)
        y = np.empty(80)
        for i in range(80):
            phase = i % 2
            matrix[i, phase] = 10
            y[i] = 1.0 if phase == 0 else float(rng.uniform(1, 5))
        dataset = EIPVDataset(matrix=matrix, cpis=y,
                              eip_index=np.arange(2) * 16,
                              interval_instructions=1000)
        plan = stratified_plan(dataset, budget=12, rng=rng, clusters=2,
                               projection_dim=None)
        variable_rows = set(np.nonzero(matrix[:, 1] > 0)[0].tolist())
        in_variable = sum(1 for i in plan.intervals
                          if int(i) in variable_rows)
        assert in_variable > plan.n_samples / 2

    def test_budget_respected(self):
        dataset = phased_dataset(m=50)
        plan = stratified_plan(dataset, budget=9,
                               rng=np.random.default_rng(1))
        assert plan.n_samples <= 9


@settings(max_examples=15, deadline=None)
@given(budget=st.integers(1, 20), seed=st.integers(0, 100))
def test_all_plans_are_valid(budget, seed):
    dataset = phased_dataset(m=40, seed=seed)
    rng = np.random.default_rng(seed)
    for builder in (uniform_plan, random_plan, phase_based_plan,
                    stratified_plan):
        plan = builder(dataset, budget, rng)
        assert plan.weights.sum() == pytest.approx(1.0)
        assert plan.intervals.min() >= 0
        assert plan.intervals.max() < dataset.n_intervals
        estimate = plan.estimate_cpi(dataset)
        assert dataset.cpis.min() - 1e-9 <= estimate \
            <= dataset.cpis.max() + 1e-9
