"""Tests for technique evaluation and the quadrant-based selector."""

import numpy as np
import pytest

from repro.core.quadrant import Quadrant
from repro.sampling.evaluation import (
    TECHNIQUES,
    best_technique,
    compare_techniques,
    evaluate_technique,
    true_cpi,
)
from repro.sampling.selector import RATIONALE, recommend_for, select_technique
from repro.trace.eipv import EIPVDataset

from tests.sampling.test_plans import phased_dataset


def noise_dataset(m=60, seed=0):
    rng = np.random.default_rng(seed)
    matrix = ((rng.random((m, 8)) < 0.5)
              * rng.integers(1, 10, (m, 8))).astype(np.int32)
    y = rng.normal(2.0, 0.7, m)
    return EIPVDataset(matrix=matrix, cpis=y,
                       eip_index=np.arange(8) * 16,
                       interval_instructions=1000, workload_name="noise")


class TestEvaluation:
    def test_true_cpi(self):
        dataset = phased_dataset()
        assert true_cpi(dataset) == pytest.approx(float(dataset.cpis.mean()))

    def test_all_techniques_registered(self):
        assert set(TECHNIQUES) == {"uniform", "random", "phase_based",
                                   "stratified"}

    def test_unknown_technique(self):
        with pytest.raises(KeyError):
            evaluate_technique(phased_dataset(), "magic", 5)

    def test_error_fields_consistent(self):
        result = evaluate_technique(phased_dataset(), "random", 5,
                                    trials=10, seed=0)
        assert result.mean_abs_error <= result.max_abs_error + 1e-12
        assert result.mean_rel_error == pytest.approx(
            result.mean_abs_error / result.true_cpi)
        assert result.trials == 10

    def test_phase_based_wins_on_phased_data(self):
        dataset = phased_dataset(m=90, n_phases=3, spread=2.0)
        results = compare_techniques(dataset, budget=3, trials=15, seed=1)
        best = best_technique(results)
        assert best.technique == "phase_based"

    def test_bigger_budget_reduces_random_error(self):
        dataset = phased_dataset(m=90, spread=2.0)
        small = evaluate_technique(dataset, "random", 3, trials=40, seed=2)
        large = evaluate_technique(dataset, "random", 30, trials=40, seed=2)
        assert large.mean_abs_error < small.mean_abs_error

    def test_summary_row(self):
        result = evaluate_technique(phased_dataset(), "uniform", 5,
                                    trials=5)
        row = result.summary_row()
        assert row[0] == "uniform"
        assert row[1] == 5


class TestSelector:
    def test_phased_data_recommends_phase_based(self):
        recommendation = select_technique(phased_dataset(m=80, spread=2.0),
                                          k_max=10)
        assert recommendation.quadrant is Quadrant.Q4
        assert recommendation.technique == "phase_based"
        assert "phase" in recommendation.rationale.lower()

    def test_noise_data_recommends_stratified(self):
        recommendation = select_technique(noise_dataset(), k_max=10)
        assert recommendation.quadrant is Quadrant.Q3
        assert recommendation.technique == "stratified"

    def test_rationale_for_all_quadrants(self):
        assert set(RATIONALE) == set(Quadrant)

    def test_plan_builder_usable(self):
        recommendation = select_technique(phased_dataset(m=80), k_max=8)
        plan = recommendation.plan_builder(phased_dataset(m=80), 4,
                                           np.random.default_rng(0))
        assert plan.n_samples >= 1

    def test_recommend_for_reuses_analysis(self):
        from repro.core.predictability import analyze_predictability
        analysis = analyze_predictability(phased_dataset(m=80), k_max=8)
        recommendation = recommend_for(analysis)
        assert recommendation.analysis is analysis
