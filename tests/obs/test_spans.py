"""Span mechanics: disabled no-ops, nesting, grafting, round trips."""

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN, Span, Tracer


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    obs.disable_tracing()
    yield
    obs.disable_tracing()


class TestDisabled:
    def test_span_returns_shared_null_singleton(self):
        assert not obs.tracing_enabled()
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", attr="x") is NULL_SPAN

    def test_null_span_is_inert(self):
        with obs.span("stage") as sp:
            assert sp is NULL_SPAN
            assert sp.inc("points", 3) is sp
            assert sp.set(workload="odbc") is sp
        assert sp.snapshot() is None
        assert not sp.enabled

    def test_snapshot_roots_empty_and_graft_noop(self):
        obs.graft([{"name": "orphan", "wall_s": 1.0}])
        assert obs.snapshot_roots() == []
        assert obs.current_tracer() is None


class TestEnabled:
    def test_nesting_builds_a_tree(self):
        tracer = obs.enable_tracing()
        with obs.span("outer") as outer:
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b") as b:
                b.inc("items", 2).set(kind="test")
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert outer.children[1].counters == {"items": 2}
        assert outer.children[1].attrs == {"kind": "test"}
        assert outer.wall_s >= sum(c.wall_s for c in outer.children)

    def test_sibling_roots_keep_record_order(self):
        tracer = obs.enable_tracing()
        for name in ("first", "second", "third"):
            with obs.span(name):
                pass
        assert [r.name for r in tracer.roots] == ["first", "second", "third"]
        assert tracer.current is None

    def test_enable_disable_toggles_span_type(self):
        obs.enable_tracing()
        live = obs.span("stage")
        assert isinstance(live, Span) and live.enabled
        obs.disable_tracing()
        assert obs.span("stage") is NULL_SPAN

    def test_counters_accumulate(self):
        obs.enable_tracing()
        with obs.span("stage") as sp:
            sp.inc("n")
            sp.inc("n", 4)
        assert sp.counters == {"n": 5}


class TestSnapshotRoundTrip:
    def test_snapshot_is_json_safe_and_lossless(self):
        tracer = obs.enable_tracing()
        with obs.span("job", workload="odbc"):
            with obs.span("analyze") as inner:
                inner.inc("points", 60)
        snap = tracer.snapshot()
        assert len(snap) == 1
        root = snap[0]
        assert root["name"] == "job"
        assert root["attrs"] == {"workload": "odbc"}
        assert root["children"][0]["counters"] == {"points": 60}
        rebuilt = Span.from_snapshot(root, Tracer())
        assert rebuilt.snapshot() == root

    def test_graft_under_current_span(self):
        tracer = obs.enable_tracing()
        worker_tree = {"name": "job", "wall_s": 0.25,
                       "children": [{"name": "analyze", "wall_s": 0.2}]}
        with obs.span("census"):
            obs.graft([worker_tree, None])
        root, = tracer.roots
        assert [c.name for c in root.children] == ["job"]
        assert root.children[0].children[0].name == "analyze"
        assert root.children[0].wall_s == 0.25

    def test_graft_as_roots_when_no_span_open(self):
        tracer = obs.enable_tracing()
        tracer.graft([{"name": "job", "wall_s": 0.1}])
        assert [r.name for r in tracer.roots] == ["job"]


class TestCapture:
    def test_capture_restores_previous_state(self):
        assert not obs.tracing_enabled()
        with obs.capture() as tracer:
            assert obs.current_tracer() is tracer
            with obs.span("stage"):
                pass
        assert not obs.tracing_enabled()
        assert [r.name for r in tracer.roots] == ["stage"]

    def test_capture_restores_outer_tracer(self):
        outer = obs.enable_tracing()
        with obs.span("outer"):
            with obs.capture() as inner:
                with obs.span("shadowed"):
                    pass
        assert obs.current_tracer() is outer
        assert [r.name for r in outer.roots] == ["outer"]
        assert [r.name for r in inner.roots] == ["shadowed"]

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.capture():
                raise RuntimeError("boom")
        assert not obs.tracing_enabled()
