"""Profile aggregation and rendering over synthetic span forests.

Fixed wall times make the expected output exact: these are golden tests
for the ``repro profile`` report machinery, independent of the pipeline.
"""

from repro.obs import aggregate_spans, render_profile, slowest_spans

#: Two "job" roots, the shape a two-workload profile run produces.
FOREST = [
    {"name": "job", "wall_s": 1.0, "attrs": {"workload": "spec.gzip"},
     "children": [
         {"name": "collect", "wall_s": 0.25,
          "counters": {"samples": 100}},
         {"name": "analyze", "wall_s": 0.5, "children": [
             {"name": "cv.fold", "wall_s": 0.2},
             {"name": "cv.fold", "wall_s": 0.2},
         ]},
     ]},
    {"name": "job", "wall_s": 2.0, "attrs": {"workload": "spec.art"},
     "children": [
         {"name": "collect", "wall_s": 0.5,
          "counters": {"samples": 300}},
         {"name": "analyze", "wall_s": 1.0, "children": [
             {"name": "cv.fold", "wall_s": 0.5},
         ]},
     ]},
]


class TestAggregateSpans:
    def test_paths_in_first_visit_order(self):
        stages = aggregate_spans(FOREST)
        assert [s.path for s in stages] == [
            "job", "job/collect", "job/analyze", "job/analyze/cv.fold"]
        assert [s.depth for s in stages] == [0, 1, 1, 2]
        assert [s.name for s in stages] == [
            "job", "collect", "analyze", "cv.fold"]

    def test_calls_total_and_self_time(self):
        by_path = {s.path: s for s in aggregate_spans(FOREST)}
        job = by_path["job"]
        assert job.calls == 2
        assert job.total_s == 3.0
        # self = total - direct children: (1.0-0.75) + (2.0-1.5)
        assert abs(job.self_s - 0.75) < 1e-12
        folds = by_path["job/analyze/cv.fold"]
        assert folds.calls == 3
        assert abs(folds.total_s - 0.9) < 1e-12
        assert abs(folds.self_s - 0.9) < 1e-12  # leaves: self == total

    def test_counters_sum_across_spans(self):
        by_path = {s.path: s for s in aggregate_spans(FOREST)}
        assert by_path["job/collect"].counters == {"samples": 400}

    def test_empty_and_none_roots(self):
        assert aggregate_spans([]) == []
        assert aggregate_spans([None, {}]) == []


class TestSlowestSpans:
    def test_ordering_and_top_cutoff(self):
        top = slowest_spans(FOREST, top=3)
        assert [(path, wall) for path, wall, _ in top] == [
            ("job", 2.0), ("job", 1.0), ("job/analyze", 1.0)]
        assert top[0][2] == {"workload": "spec.art"}

    def test_ties_break_on_path_then_order(self):
        forest = [{"name": "b", "wall_s": 1.0},
                  {"name": "a", "wall_s": 1.0},
                  {"name": "a", "wall_s": 1.0}]
        paths = [path for path, _, _ in slowest_spans(forest, top=3)]
        assert paths == ["a", "a", "b"]

    def test_deterministic_across_calls(self):
        assert slowest_spans(FOREST) == slowest_spans(FOREST)


class TestRenderProfile:
    def test_golden_structure(self):
        report = render_profile(FOREST, top=3)
        assert report == render_profile(FOREST, top=3)  # deterministic
        lines = report.splitlines()
        assert any("per-stage breakdown" in line for line in lines)
        assert any("top 3 slowest spans" in line for line in lines)
        # Stage rows keep first-visit order, indented by depth.
        stage_rows = [line for line in lines if "job" in line
                      or "collect" in line or "analyze" in line
                      or "cv.fold" in line]
        assert "job" in stage_rows[0]
        assert any(line.lstrip().startswith("cv.fold") for line in lines)
        # Shares: job roots are 100% of the run; analyze is 1.5/3.0.
        assert any("100.0%" in line for line in lines)
        assert any("50.0%" in line for line in lines)
        assert "workload=spec.art" in report

    def test_no_spans_message(self):
        assert "no spans recorded" in render_profile([])
