"""Cross-process span merging and the JSONL trace file.

The acceptance bar: a ``--jobs 2`` profile run produces the same merged
stage structure as a serial one, and the JSONL trace round-trips.
"""

import pytest

from repro import api, obs
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    read_trace,
    trace_events,
    write_trace,
)
from repro.runtime.jobs import JobSpec
from repro.runtime.manifest import RunManifest
from repro.runtime.scheduler import run_jobs

CONFIG = api.AnalysisConfig(k_max=5, seed=7)
WORKLOADS = ["spec.gzip", "spec.art"]

#: Every stage path one pipeline job goes through, in breakdown order.
JOB_STAGES = (
    "job",
    "job/pipeline.collect",
    "job/pipeline.collect/trace.sample",
    "job/pipeline.collect/trace.build_eipvs",
    "job/analyze",
    "job/analyze/cv",
    "job/analyze/cv/cv.fold",
    "job/analyze/cv/cv.fold/fit.tree",
    "job/analyze/cv/cv.fold/cv.predict",
)


def _profile(jobs: int) -> api.ProfileResult:
    return api.profile(WORKLOADS, config=CONFIG, n_intervals=12,
                       scale="tiny", jobs=jobs)


class TestParallelMerge:
    def test_serial_covers_every_pipeline_stage(self):
        result = _profile(jobs=1)
        assert result.stage_names() == JOB_STAGES
        assert len(result.spans) == len(WORKLOADS)
        assert [root["attrs"]["workload"] for root in result.spans] == \
            WORKLOADS  # submission order survives
        assert result.total_wall_s > 0

    def test_two_workers_merge_to_same_structure(self):
        serial = _profile(jobs=1)
        parallel = _profile(jobs=2)
        assert parallel.stage_names() == serial.stage_names()
        assert [r["attrs"]["workload"] for r in parallel.spans] == \
            [r["attrs"]["workload"] for r in serial.spans]
        by_path = {s.path: s for s in parallel.stages}
        for s in serial.stages:
            assert by_path[s.path].calls == s.calls

    def test_profile_does_not_leak_tracing(self):
        assert not obs.tracing_enabled()
        _profile(jobs=1)
        assert not obs.tracing_enabled()

    def test_failed_job_raises_with_workload_named(self):
        with pytest.raises(RuntimeError, match="no.such.workload"):
            api.profile(["no.such.workload"], config=CONFIG,
                        n_intervals=12, scale="tiny")


class TestManifestSpans:
    SPECS = [JobSpec(workload=name, n_intervals=12, seed=7, scale="tiny",
                     k_max=5) for name in WORKLOADS]

    def test_span_roots_merge_in_submission_order(self):
        with obs.capture():
            outcomes = run_jobs(self.SPECS, jobs=2)
        manifest = RunManifest.from_outcomes(outcomes, command="census",
                                             jobs=2)
        roots = manifest.span_roots()
        assert [root["attrs"]["workload"] for root in roots] == WORKLOADS
        assert all(root["name"] == "job" for root in roots)

    def test_untraced_run_has_no_spans(self):
        outcomes = run_jobs([self.SPECS[0]])
        manifest = RunManifest.from_outcomes(outcomes)
        assert manifest.span_roots() == []

    def test_cached_payload_never_stores_spans(self, tmp_path):
        from repro.runtime.cache import ResultCache
        cache = ResultCache(tmp_path)
        with obs.capture():
            traced, = run_jobs([self.SPECS[0]], cache=cache)
        assert traced.result.spans  # the live outcome carries the trace...
        stored = cache.get(traced.key)
        assert "spans" not in stored  # ...but the cache entry never does
        warm, = run_jobs([self.SPECS[0]], cache=cache)
        assert warm.cache_hit and warm.result.spans == ()
        assert warm.result.re == traced.result.re


class TestJsonlTrace:
    FOREST = [{"name": "job", "wall_s": 0.5,
               "attrs": {"workload": "spec.gzip"},
               "children": [{"name": "analyze", "wall_s": 0.25,
                             "counters": {"points": 12}}]}]

    def test_events_depth_first_with_meta_header(self):
        events = trace_events(self.FOREST, meta={"command": "profile"})
        header, first, second = events
        assert header == {"type": "trace_meta",
                          "schema_version": TRACE_SCHEMA_VERSION,
                          "command": "profile"}
        assert (first["path"], first["depth"]) == ("job", 0)
        assert (second["path"], second["depth"]) == ("job/analyze", 1)
        assert second["counters"] == {"points": 12}

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "traces" / "run.jsonl"
        out = write_trace(path, self.FOREST, meta={"command": "profile"})
        assert out == path and path.exists()
        assert read_trace(path) == trace_events(self.FOREST,
                                                meta={"command": "profile"})

    def test_real_profile_trace_parses(self, tmp_path):
        result = api.profile("spec.gzip", config=CONFIG, n_intervals=12,
                             scale="tiny")
        path = write_trace(tmp_path / "profile.jsonl", list(result.spans))
        events = read_trace(path)
        assert events[0]["type"] == "trace_meta"
        spans = [e for e in events if e["type"] == "span"]
        assert {e["path"] for e in spans} == set(JOB_STAGES)
