"""Tests for the model-vs-paper calibration report."""

import pytest

from repro.analysis.calibration import (
    CalibrationRow,
    calibrate_workload,
    calibration_report,
)
from repro.workloads.scale import DEFAULT, TINY


class TestCalibrationRow:
    def row(self, **overrides):
        defaults = dict(
            workload="w", paper_unique_eips=1000,
            measured_unique_eips=120, paper_switch_rate=2600,
            measured_switch_rate=2300, paper_cpi_variance=0.01,
            measured_cpi_variance=0.008)
        defaults.update(overrides)
        return CalibrationRow(**defaults)

    def test_eip_ratio_within_tolerance(self):
        # TINY scale: target = 1000 * 0.02 = 20; measured 120 is 6x off.
        assert not self.row().eip_ratio_ok(TINY)
        # DEFAULT scale: target = 120; measured 120 is exact.
        assert self.row().eip_ratio_ok(DEFAULT)

    def test_unknown_paper_values_pass(self):
        row = self.row(paper_unique_eips=None, paper_switch_rate=None)
        assert row.eip_ratio_ok(DEFAULT)
        assert row.switch_rate_ok()

    def test_switch_rate_tolerance(self):
        assert self.row().switch_rate_ok()
        assert not self.row(measured_switch_rate=100).switch_rate_ok()


class TestReport:
    def test_calibrate_one_workload(self):
        row = calibrate_workload("spec.gzip", n_intervals=8, seed=3,
                                 scale=TINY)
        assert row.workload == "spec.gzip"
        assert row.measured_unique_eips > 0
        assert row.measured_switch_rate >= 0

    def test_odbc_calibration_holds_at_default_scale(self):
        # Unique-EIP coverage needs enough samples: 30 intervals = 3000
        # samples against a ~2900-EIP scaled footprint.
        row = calibrate_workload("odbc", n_intervals=30, seed=3,
                                 scale=DEFAULT)
        assert row.eip_ratio_ok(DEFAULT)
        assert row.switch_rate_ok()
        assert row.measured_cpi_variance == pytest.approx(
            row.paper_cpi_variance, abs=0.01)

    def test_report_renders(self):
        text = calibration_report(workloads=("spec.gzip",), n_intervals=8,
                                  seed=3, scale=TINY)
        assert "calibration" in text
        assert "spec.gzip" in text
