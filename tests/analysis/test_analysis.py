"""Tests for the analysis helpers: variance, spread, breakdown, report."""

import numpy as np
import pytest

from repro.analysis.breakdown import breakdown_series
from repro.analysis.report import (
    format_breakdown,
    format_curve,
    format_table,
    sparkline,
)
from repro.analysis.spread import spread_series
from repro.analysis.variance import (
    CodeFootprintSummary,
    CPISummary,
    interval_cpi_summary,
    sample_cpi_summary,
)
from repro.trace.eipv import build_eipvs

from tests.trace.test_eipv import synthetic_trace


class TestVariance:
    def test_cpi_summary(self):
        values = np.array([1.0, 2.0, 3.0])
        summary = CPISummary.from_values(values)
        assert summary.mean == pytest.approx(2.0)
        assert summary.variance == pytest.approx(np.var(values))
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert summary.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CPISummary.from_values(np.array([]))

    def test_interval_and_sample_summaries(self):
        trace = synthetic_trace(100)
        dataset = build_eipvs(trace, 10_000)
        interval = interval_cpi_summary(dataset)
        sample = sample_cpi_summary(trace)
        # Averaging reduces variance.
        assert interval.variance < sample.variance

    def test_footprint_summary(self):
        trace = synthetic_trace(200, n_eips=30)
        summary = CodeFootprintSummary.from_trace(trace)
        assert summary.unique_eips <= 30
        assert summary.samples == 200
        assert 0.0 <= summary.top10_share <= 1.0
        assert -0.1 <= summary.gini <= 1.0

    def test_gini_higher_for_skewed_distribution(self):
        flat = synthetic_trace(300, n_eips=20, seed=1)
        skewed = synthetic_trace(300, n_eips=20, seed=1)
        skewed.eips[:250] = skewed.eips[0]  # concentrate most samples
        assert CodeFootprintSummary.from_trace(skewed).gini \
            > CodeFootprintSummary.from_trace(flat).gini


class TestSpread:
    def test_series_shape(self):
        trace = synthetic_trace(200, n_eips=25)
        series = spread_series(trace)
        assert len(series.times) == 200
        assert series.unique_eips <= 25
        assert series.duration_seconds > 0

    def test_window_truncation(self):
        trace = synthetic_trace(200)
        full = spread_series(trace)
        half = spread_series(trace,
                             window_seconds=full.duration_seconds / 2)
        assert len(half.times) < len(full.times)

    def test_window_too_small_rejected(self):
        trace = synthetic_trace(50)
        with pytest.raises(ValueError):
            spread_series(trace, window_seconds=1e-12)

    def test_cpi_timeline_covers_values(self):
        trace = synthetic_trace(200)
        series = spread_series(trace)
        _, means = series.cpi_timeline(bins=20)
        finite = means[np.isfinite(means)]
        assert finite.min() >= trace.cpis.min() - 1e-9
        assert finite.max() <= trace.cpis.max() + 1e-9

    def test_eips_touched_bounded(self):
        trace = synthetic_trace(200, n_eips=15)
        series = spread_series(trace)
        touched = series.eips_touched_per_bin(bins=10)
        assert touched.max() <= 15
        assert touched.sum() >= series.unique_eips


class TestBreakdown:
    def test_components_sum_to_total(self):
        trace = synthetic_trace(150)
        series = breakdown_series(trace, bins=15)
        summed = sum(series.component_cpis.values())
        assert summed == pytest.approx(series.total_cpi)

    def test_shares_sum_to_one(self):
        trace = synthetic_trace(150)
        series = breakdown_series(trace, bins=15)
        total = sum(series.component_share(c)
                    for c in ("work", "fe", "exe", "other"))
        assert total == pytest.approx(1.0)

    def test_dominant_component(self):
        trace = synthetic_trace(150)
        series = breakdown_series(trace, bins=10)
        # synthetic_trace sets work = 0.5 * cycles: always dominant.
        assert series.dominant_component() == "work"

    def test_unknown_component_rejected(self):
        trace = synthetic_trace(100)
        series = breakdown_series(trace, bins=5)
        with pytest.raises(KeyError):
            series.component_share("l3")
        with pytest.raises(KeyError):
            series.share_timeline("l3")

    def test_bins_clamped_to_samples(self):
        trace = synthetic_trace(10)
        series = breakdown_series(trace, bins=100)
        assert len(series.times) == 10


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_sparkline_range(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_constant(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_sparkline_empty_and_nan(self):
        assert sparkline([]) == ""
        assert sparkline([np.nan, 1.0])[0] == " "

    def test_format_curve_marks_kopt(self):
        text = format_curve(range(1, 11), [1.0 - 0.05 * k
                                           for k in range(10)],
                            "curve", mark_k=7)
        assert "<- k_opt" in text
        assert "k=  7" in text

    def test_format_breakdown_runs(self):
        trace = synthetic_trace(100)
        series = breakdown_series(trace, bins=10)
        text = format_breakdown(series, "test")
        assert "WORK" in text and "EXE" in text
