"""Tests for the VTune-analogue sampling driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.sampler import SamplingDriver, collect_trace
from repro.uarch.cpu import ExecutionProfile
from repro.uarch.machine import itanium2
from repro.workloads.os_model import SchedulerConfig
from repro.workloads.program import CyclicSchedule, FlatMixSchedule, Program
from repro.workloads.regions import CodeRegion, RandomLatencyModulator
from repro.workloads.system import SimulatedSystem, Workload
from repro.workloads.thread_model import WorkloadThread


def make_system(sample_period=10_000, n_threads=2, seed=0):
    threads = []
    for i in range(n_threads):
        region = CodeRegion(name=f"r{i}", eip_base=0x10000 * (i + 1),
                            n_eips=16, profile=ExecutionProfile())
        threads.append(WorkloadThread(
            thread_id=i, process="app",
            program=Program(f"p{i}", FlatMixSchedule([region]))))
    workload = Workload(name="t", threads=threads,
                        scheduler=SchedulerConfig(mean_quantum=7_000),
                        sample_period=sample_period)
    return SimulatedSystem(itanium2(), workload, seed=seed)


class TestSampling:
    def test_sample_count(self):
        trace = collect_trace(make_system(), 200_000)
        assert len(trace) == 20

    def test_counters_conserved(self):
        """Sampled cycle totals equal the underlying execution exactly."""
        system = make_system(seed=1)
        slices = system.run(200_000)
        total_cycles = sum(s.breakdown.cycles for s in slices)
        system.reset(seed=1)
        trace = collect_trace(system, 200_000)
        assert trace.total_cycles == pytest.approx(total_cycles)
        assert trace.total_instructions == 200_000
        components = (trace.work_cycles + trace.fe_cycles
                      + trace.exe_cycles + trace.other_cycles)
        assert components == pytest.approx(trace.cycles)

    def test_eips_belong_to_workload_regions(self):
        system = make_system()
        valid = set()
        for region in system.workload.all_regions:
            valid.update(int(e) for e in region.eips)
        trace = collect_trace(system, 200_000)
        assert set(int(e) for e in trace.eips) <= valid

    def test_thread_tags_valid(self):
        trace = collect_trace(make_system(n_threads=3), 300_000)
        assert set(np.unique(trace.thread_ids)) <= {0, 1, 2}
        assert set(trace.processes) == {"app"}

    def test_period_override(self):
        system = make_system(sample_period=10_000)
        trace = collect_trace(system, 100_000, period=20_000)
        assert len(trace) == 5
        assert trace.sample_period == 20_000

    def test_run_shorter_than_period_rejected(self):
        with pytest.raises(ValueError):
            collect_trace(make_system(sample_period=10_000), 5_000)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SamplingDriver(make_system(), period=0)

    def test_metadata_carries_overhead(self):
        fine = collect_trace(make_system(sample_period=10_000), 100_000)
        assert fine.metadata["nominal_overhead"] == 0.05

    def test_deterministic(self):
        t1 = collect_trace(make_system(seed=9), 100_000)
        t2 = collect_trace(make_system(seed=9), 100_000)
        assert (t1.eips == t2.eips).all()
        assert t1.cycles == pytest.approx(t2.cycles)

    def test_batched_collect_matches_reference(self):
        """The vectorized engine and the loop are array-for-array equal."""
        batched = SamplingDriver(make_system(seed=3)).collect(200_000)
        reference = SamplingDriver(
            make_system(seed=3))._collect_reference(200_000)
        _assert_traces_identical(batched, reference)

    def test_sample_cpi_reflects_phase(self):
        """Samples taken in an expensive phase show higher CPI."""
        cheap = CodeRegion(name="cheap", eip_base=0x1000, n_eips=4,
                           profile=ExecutionProfile(base_cpi=0.5,
                                                    data_footprint=4096))
        costly = CodeRegion(
            name="costly", eip_base=0x2000, n_eips=4,
            profile=ExecutionProfile(base_cpi=0.5,
                                     data_footprint=1 << 30,
                                     data_locality=0.8))
        program = Program("p", CyclicSchedule([(cheap, 100_000),
                                               (costly, 100_000)]))
        workload = Workload(
            name="phased",
            threads=[WorkloadThread(thread_id=0, process="app",
                                    program=program)],
            scheduler=SchedulerConfig(mean_quantum=20_000),
            sample_period=10_000)
        system = SimulatedSystem(itanium2(), workload, seed=0)
        trace = collect_trace(system, 400_000)
        in_costly = np.asarray(trace.eips) >= 0x2000
        assert trace.cpis[in_costly].mean() > 2 * trace.cpis[~in_costly].mean()


_TRACE_ARRAYS = ("eips", "thread_ids", "process_ids", "instructions",
                 "cycles", "work_cycles", "fe_cycles", "exe_cycles",
                 "other_cycles")


def _assert_traces_identical(a, b):
    """Bit-for-bit trace equality: same dtypes, same bytes, same metadata."""
    for name in _TRACE_ARRAYS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, name
        assert np.array_equal(x, y), name
    assert a.processes == b.processes
    assert a.sample_period == b.sample_period
    assert a.metadata == b.metadata


def _randomized_system(seed):
    """A workload exercising every sampler code path: multi-part plans
    (CyclicSchedule chunks spanning slices), skewed EIP draws,
    data-dependent modulators, several processes."""
    rng = np.random.default_rng(seed)
    hot = CodeRegion(name="hot", eip_base=0x1000,
                     n_eips=int(rng.integers(2, 24)),
                     profile=ExecutionProfile(),
                     eip_concentration=float(rng.random() * 2))
    cold = CodeRegion(name="cold", eip_base=0x8000,
                      n_eips=int(rng.integers(2, 64)),
                      profile=ExecutionProfile(base_cpi=0.9),
                      modulator=RandomLatencyModulator(0.1))
    cyclic = Program("cyclic", CyclicSchedule(
        [(hot, int(rng.integers(2_000, 6_000))),
         (cold, int(rng.integers(2_000, 6_000)))]))
    flat = Program("flat", FlatMixSchedule([hot, cold]))
    workload = Workload(
        name="randomized",
        threads=[WorkloadThread(thread_id=0, process="app", program=cyclic),
                 WorkloadThread(thread_id=1, process="db", program=flat)],
        scheduler=SchedulerConfig(
            mean_quantum=int(rng.integers(5_000, 30_000))),
        sample_period=10_000)
    return SimulatedSystem(itanium2(), workload, seed=seed)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000),
       periods=st.integers(4, 30),
       period=st.integers(3_000, 20_000),
       slack=st.integers(0, 2_999))
def test_collect_equals_reference_on_randomized_workloads(
        seed, periods, period, slack):
    """Property: the batched engine reproduces the reference loop exactly
    — same EIP draws (same RNG stream consumption), same counter floats
    (same association order), same process-code assignment — for any
    workload, period and run length."""
    total = periods * period + slack
    batched = SamplingDriver(_randomized_system(seed),
                             period=period).collect(total)
    reference = SamplingDriver(
        _randomized_system(seed), period=period)._collect_reference(total)
    _assert_traces_identical(batched, reference)
