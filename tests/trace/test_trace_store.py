"""The out-of-core tier: TraceStore, streaming collect, streaming EIPVs.

The invariant under test everywhere: the on-disk path produces arrays
bit-identical to the in-memory path — same trace columns from
``collect_to_store`` as from ``collect``, same EIPV matrix/CPIs from
``from_store`` as from ``build_eipvs`` — at any chunk size, including
chunk sizes that split execution slices and leave a discarded tail.
"""

import json

import numpy as np
import pytest

from repro.sparse import CSRMatrix
from repro.trace.eipv import EIPVDataset, build_eipvs
from repro.trace.sampler import SamplingDriver
from repro.trace.storage import (
    _TRACE_COLUMNS,
    TraceStore,
    load_eipvs,
    save_eipvs,
)
from tests.trace.test_sampler import (
    _assert_traces_identical,
    _randomized_system,
    make_system,
)


def collect_both(system_factory, total, chunk_samples, tmp_path):
    """An in-memory trace and a store-collected trace of the same system."""
    trace = SamplingDriver(system_factory()).collect(total)
    driver = SamplingDriver(system_factory())
    driver.collect_to_store(TraceStore.create(tmp_path / "store"), total,
                            chunk_samples=chunk_samples)
    return trace, TraceStore.open(tmp_path / "store")


class TestStoreLifecycle:
    def test_round_trip_from_trace(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        TraceStore.from_trace(trace, tmp_path / "store")
        store = TraceStore.open(tmp_path / "store")
        assert len(store) == len(trace)
        _assert_traces_identical(store.as_trace(), trace)

    def test_columns_are_plain_npy_memmaps(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        TraceStore.from_trace(trace, tmp_path / "store")
        store = TraceStore.open(tmp_path / "store")
        eips = store.column("eips")
        assert isinstance(eips, np.memmap)
        assert not eips.flags.writeable
        np.testing.assert_array_equal(np.asarray(eips), trace.eips)
        # and np.load reads the file without going through the store
        raw = np.load(tmp_path / "store" / "cycles.npy")
        np.testing.assert_array_equal(raw, trace.cycles)

    def test_unfinalized_store_is_not_openable(self, tmp_path):
        store = TraceStore.create(tmp_path / "partial")
        store.append({name: np.zeros(3, dtype=np.int64)
                      for name in _TRACE_COLUMNS})
        store.close()
        assert not TraceStore.is_store(tmp_path / "partial")
        with pytest.raises(FileNotFoundError, match="not a trace store"):
            TraceStore.open(tmp_path / "partial")

    def test_newer_format_refused(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        TraceStore.from_trace(trace, tmp_path / "store")
        header_path = tmp_path / "store" / "header.json"
        header = json.loads(header_path.read_text())
        header["format"] = 99
        header_path.write_text(json.dumps(header))
        with pytest.raises(ValueError, match="format 99"):
            TraceStore.open(tmp_path / "store")

    def test_unknown_column_rejected(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        TraceStore.from_trace(trace, tmp_path / "store")
        store = TraceStore.open(tmp_path / "store")
        with pytest.raises(KeyError):
            store.column("no_such_column")


class TestStreamingCollect:
    @pytest.mark.parametrize("chunk_samples", [1, 7, 64, 10_000])
    def test_identical_to_in_memory_collect(self, tmp_path, chunk_samples):
        trace, store = collect_both(make_system, 503_331, chunk_samples,
                                    tmp_path)
        _assert_traces_identical(store.as_trace(), trace)

    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_identical_on_randomized_systems(self, tmp_path, seed):
        """Multi-part plans, modulators, several processes, split slices."""
        trace, store = collect_both(lambda: _randomized_system(seed),
                                    1_050_000, 13, tmp_path)
        _assert_traces_identical(store.as_trace(), trace)

    def test_run_shorter_than_period_rejected(self, tmp_path):
        driver = SamplingDriver(make_system())
        with pytest.raises(ValueError, match="run too short"):
            driver.collect_to_store(TraceStore.create(tmp_path / "s"),
                                    driver.period - 1)

    def test_bad_chunk_size_rejected(self, tmp_path):
        driver = SamplingDriver(make_system())
        with pytest.raises(ValueError, match="chunk_samples"):
            driver.collect_to_store(TraceStore.create(tmp_path / "s"),
                                    500_000, chunk_samples=0)


class TestFromStore:
    @pytest.mark.parametrize("sparse", [False, True])
    @pytest.mark.parametrize("chunk_intervals", [1, 3, 1000])
    def test_identical_to_build_eipvs(self, tmp_path, sparse,
                                      chunk_intervals):
        trace, store = collect_both(lambda: _randomized_system(2),
                                    1_050_000, 37, tmp_path)
        interval = trace.sample_period * 7
        expected = build_eipvs(trace, interval, sparse=sparse)
        got = EIPVDataset.from_store(store, interval, sparse=sparse,
                                     chunk_intervals=chunk_intervals)
        if sparse:
            for part in ("indptr", "indices", "data"):
                np.testing.assert_array_equal(
                    getattr(got.matrix, part), getattr(expected.matrix, part))
        else:
            assert got.matrix.dtype == expected.matrix.dtype
            np.testing.assert_array_equal(got.matrix, expected.matrix)
        np.testing.assert_array_equal(got.cpis, expected.cpis)
        np.testing.assert_array_equal(got.eip_index, expected.eip_index)
        assert got.interval_instructions == expected.interval_instructions
        assert got.workload_name == trace.workload_name

    def test_validation_matches_build_eipvs(self, tmp_path):
        _, store = collect_both(make_system, 500_000, 64, tmp_path)
        with pytest.raises(ValueError,
                           match="interval shorter than the sampling"):
            EIPVDataset.from_store(store, store.sample_period // 2)
        with pytest.raises(ValueError, match="too short for even one"):
            EIPVDataset.from_store(store,
                                   store.sample_period * (len(store) + 1))


class TestEipvPersistenceFormats:
    def test_sparse_round_trips_as_csr(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        dataset = build_eipvs(trace, trace.sample_period * 5, sparse=True)
        path = save_eipvs(dataset, tmp_path / "d.npz")
        again = load_eipvs(path)
        assert again.is_sparse
        assert isinstance(again.matrix, CSRMatrix)
        for part in ("indptr", "indices", "data"):
            np.testing.assert_array_equal(getattr(again.matrix, part),
                                          getattr(dataset.matrix, part))
        np.testing.assert_array_equal(again.cpis, dataset.cpis)
        np.testing.assert_array_equal(again.eip_index, dataset.eip_index)
        assert again.interval_instructions == dataset.interval_instructions

    def test_sparse_file_contains_no_pickled_objects(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        dataset = build_eipvs(trace, trace.sample_period * 5, sparse=True)
        path = save_eipvs(dataset, tmp_path / "d.npz")
        # allow_pickle defaults to False: loading every member proves the
        # archive holds only plain arrays.
        with np.load(path, allow_pickle=False) as archive:
            members = set(archive.files)
            for name in members:
                archive[name]
        assert {"matrix_indptr", "matrix_indices",
                "matrix_data"} <= members

    def test_dense_round_trip_and_format_field(self, tmp_path):
        trace = SamplingDriver(make_system()).collect(500_000)
        dataset = build_eipvs(trace, trace.sample_period * 5)
        path = save_eipvs(dataset, tmp_path / "d.npz")
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"]).decode())
        assert header["format"] == 2
        assert header["sparse"] is False
        again = load_eipvs(path)
        np.testing.assert_array_equal(again.matrix, dataset.matrix)

    def test_format_1_files_still_load(self, tmp_path):
        """Headers without a format field (the original layout) work."""
        trace = SamplingDriver(make_system()).collect(500_000)
        dataset = build_eipvs(trace, trace.sample_period * 5)
        header = {"interval_instructions": dataset.interval_instructions,
                  "workload_name": dataset.workload_name}
        np.savez_compressed(tmp_path / "v1.npz",
                            header=np.bytes_(json.dumps(header)),
                            matrix=dataset.matrix, cpis=dataset.cpis,
                            eip_index=dataset.eip_index,
                            thread_ids=dataset.thread_ids)
        again = load_eipvs(tmp_path / "v1.npz")
        np.testing.assert_array_equal(again.matrix, dataset.matrix)
        np.testing.assert_array_equal(again.cpis, dataset.cpis)

    def test_future_format_refused(self, tmp_path):
        header = {"format": 99, "interval_instructions": 1,
                  "workload_name": "x"}
        np.savez_compressed(tmp_path / "f.npz",
                            header=np.bytes_(json.dumps(header)),
                            matrix=np.zeros((1, 1)), cpis=np.zeros(1),
                            eip_index=np.zeros(1, dtype=np.int64),
                            thread_ids=np.zeros(1, dtype=np.int32))
        with pytest.raises(ValueError, match="format 99"):
            load_eipvs(tmp_path / "f.npz")
