"""Tests for thread statistics and trace persistence."""

import numpy as np
import pytest

from repro.trace.eipv import build_eipvs
from repro.trace.sampler import collect_trace
from repro.trace.storage import load_eipvs, load_trace, save_eipvs, save_trace
from repro.trace.threads import sample_level_stats, slice_level_stats
from repro.uarch.machine import itanium2
from repro.workloads.registry import get_workload
from repro.workloads.scale import TINY
from repro.workloads.system import SimulatedSystem

from tests.trace.test_events import make_trace


class TestSampleLevelStats:
    def test_context_switch_count(self):
        trace = make_trace(10)  # thread ids cycle 0,1,2,0,1,2,...
        stats = sample_level_stats(trace)
        assert stats.context_switches == 9
        assert stats.n_threads == 3

    def test_os_share_from_kernel_process(self):
        trace = make_trace(10)  # process ids alternate app/kernel
        stats = sample_level_stats(trace)
        kernel_cycles = trace.cycles[trace.process_ids == 1].sum()
        assert stats.os_time_share == pytest.approx(
            kernel_cycles / trace.total_cycles)

    def test_thread_shares_sum_to_one(self):
        trace = make_trace(30)
        stats = sample_level_stats(trace)
        assert sum(stats.thread_sample_share.values()) == pytest.approx(1.0)

    def test_requires_two_samples(self):
        trace = make_trace(5).select(np.array([0]))
        with pytest.raises(ValueError):
            sample_level_stats(trace)


class TestSliceLevelStats:
    def test_matches_scheduler_accounting(self):
        workload = get_workload("odbc", TINY)
        system = SimulatedSystem(itanium2(), workload, seed=0)
        slices = system.run(20_000_000)
        stats = slice_level_stats(slices, 900)
        assert stats.context_switches == system.scheduler.context_switches
        assert 0 < stats.os_time_share < 0.5
        assert stats.n_threads >= 2


class TestStorage:
    def test_trace_roundtrip(self, tmp_path):
        trace = make_trace(25)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert (loaded.eips == trace.eips).all()
        assert loaded.cycles == pytest.approx(trace.cycles)
        assert loaded.processes == trace.processes
        assert loaded.sample_period == trace.sample_period
        assert loaded.workload_name == trace.workload_name

    def test_eipv_roundtrip(self, tmp_path):
        workload = get_workload("spec.art", TINY)
        system = SimulatedSystem(itanium2(), workload, seed=0)
        trace = collect_trace(system, 20_000_000)
        dataset = build_eipvs(trace, 2_000_000)
        path = tmp_path / "eipvs.npz"
        save_eipvs(dataset, path)
        loaded = load_eipvs(path)
        assert (loaded.matrix == dataset.matrix).all()
        assert loaded.cpis == pytest.approx(dataset.cpis)
        assert (loaded.eip_index == dataset.eip_index).all()
        assert loaded.interval_instructions == dataset.interval_instructions

    def test_metadata_roundtrip(self, tmp_path):
        trace = make_trace(5)
        trace.metadata["paper_quadrant"] = "Q-I"
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        assert load_trace(path).metadata["paper_quadrant"] == "Q-I"
