"""Tests for sample records and columnar traces."""

import numpy as np
import pytest

from repro.trace.events import Sample, SampleTrace


def make_trace(n=10, period=1000, frequency=900):
    rng = np.random.default_rng(0)
    cycles = rng.uniform(800, 4000, n)
    return SampleTrace(
        eips=rng.integers(0x1000, 0x2000, n),
        thread_ids=np.array([i % 3 for i in range(n)], dtype=np.int32),
        process_ids=np.array([i % 2 for i in range(n)], dtype=np.int16),
        instructions=np.full(n, period, dtype=np.int64),
        cycles=cycles,
        work_cycles=cycles * 0.4,
        fe_cycles=cycles * 0.2,
        exe_cycles=cycles * 0.3,
        other_cycles=cycles * 0.1,
        processes=("app", "kernel"),
        sample_period=period,
        frequency_mhz=frequency,
        workload_name="synthetic",
    )


class TestSampleTrace:
    def test_length_and_totals(self):
        trace = make_trace(10)
        assert len(trace) == 10
        assert trace.total_instructions == 10_000
        assert trace.total_cycles == pytest.approx(trace.cycles.sum())

    def test_cpis(self):
        trace = make_trace(5)
        assert trace.cpis == pytest.approx(trace.cycles / 1000)

    def test_duration_seconds(self):
        trace = make_trace(10, frequency=900)
        expected = trace.cycles.sum() / 900e6
        assert trace.duration_seconds == pytest.approx(expected)

    def test_sample_materialization(self):
        trace = make_trace(5)
        sample = trace.sample(2)
        assert isinstance(sample, Sample)
        assert sample.eip == int(trace.eips[2])
        assert sample.process == trace.processes[int(trace.process_ids[2])]
        assert sample.cpi == pytest.approx(float(trace.cycles[2]) / 1000)

    def test_select_mask(self):
        trace = make_trace(10)
        sub = trace.select(trace.thread_ids == 0)
        assert len(sub) == 4
        assert (sub.thread_ids == 0).all()
        assert sub.workload_name == "synthetic"

    def test_by_thread_partition(self):
        trace = make_trace(10)
        parts = trace.by_thread()
        assert set(parts) == {0, 1, 2}
        assert sum(len(p) for p in parts.values()) == len(trace)

    def test_unique_eips_sorted(self):
        trace = make_trace(50)
        unique = trace.unique_eips()
        assert (np.diff(unique) > 0).all()

    def test_column_length_mismatch_rejected(self):
        trace = make_trace(5)
        with pytest.raises(ValueError):
            SampleTrace(
                eips=trace.eips,
                thread_ids=trace.thread_ids[:3],
                process_ids=trace.process_ids,
                instructions=trace.instructions,
                cycles=trace.cycles,
                work_cycles=trace.work_cycles,
                fe_cycles=trace.fe_cycles,
                exe_cycles=trace.exe_cycles,
                other_cycles=trace.other_cycles,
                processes=trace.processes,
                sample_period=1000,
                frequency_mhz=900,
            )

    def test_invalid_period_rejected(self):
        trace = make_trace(5)
        with pytest.raises(ValueError):
            trace.select(np.arange(5)).__class__(
                **{**trace.__dict__, "sample_period": 0})
