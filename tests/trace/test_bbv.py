"""Tests for basic-block vector construction."""

import numpy as np
import pytest

from repro.trace.bbv import build_bbvs
from repro.trace.eipv import build_eipvs

from tests.trace.test_eipv import synthetic_trace


class TestBuildBBVs:
    def test_fewer_or_equal_features_than_eipvs(self):
        trace = synthetic_trace(100, n_eips=40)
        eipv = build_eipvs(trace, 10_000)
        bbv = build_bbvs(trace, 10_000, block_bytes=128)
        assert bbv.n_eips <= eipv.n_eips
        assert bbv.n_intervals == eipv.n_intervals

    def test_counts_conserved(self):
        trace = synthetic_trace(100, n_eips=40)
        bbv = build_bbvs(trace, 10_000, block_bytes=128)
        assert (bbv.matrix.sum(axis=1) == 10).all()

    def test_cpis_identical_to_eipv_pipeline(self):
        trace = synthetic_trace(100)
        eipv = build_eipvs(trace, 10_000)
        bbv = build_bbvs(trace, 10_000)
        assert bbv.cpis == pytest.approx(eipv.cpis)

    def test_block_addresses_aligned(self):
        trace = synthetic_trace(100)
        bbv = build_bbvs(trace, 10_000, block_bytes=128)
        assert (bbv.eip_index % 128 == 0).all()

    def test_block_bytes_one_equals_eipv(self):
        trace = synthetic_trace(60)
        eipv = build_eipvs(trace, 10_000)
        bbv = build_bbvs(trace, 10_000, block_bytes=1)
        assert np.array_equal(bbv.eip_index, eipv.eip_index)
        assert np.array_equal(bbv.matrix, eipv.matrix)

    def test_huge_blocks_collapse_to_one_feature(self):
        trace = synthetic_trace(60)
        bbv = build_bbvs(trace, 10_000, block_bytes=1 << 40)
        assert bbv.n_eips == 1
        assert (bbv.matrix == 10).all()

    def test_validation(self):
        trace = synthetic_trace(60)
        with pytest.raises(ValueError):
            build_bbvs(trace, 10_000, block_bytes=0)
        with pytest.raises(ValueError):
            build_bbvs(trace, 500)


def test_aggregation_sums_member_eips():
    """Each block's count equals the sum of its member EIPs' counts."""
    trace = synthetic_trace(100, n_eips=32)
    eipv = build_eipvs(trace, 10_000)
    bbv = build_bbvs(trace, 10_000, block_bytes=128)
    for b, block in enumerate(bbv.eip_index):
        members = ((eipv.eip_index >= block)
                   & (eipv.eip_index < block + 128))
        assert np.array_equal(bbv.matrix[:, b],
                              eipv.matrix[:, members].sum(axis=1))
