"""Tests for EIPV construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.eipv import EIPVDataset, build_eipvs, build_per_thread_eipvs
from repro.trace.events import SampleTrace


def synthetic_trace(n_samples, period=1_000, n_threads=2, n_eips=20,
                    seed=0):
    rng = np.random.default_rng(seed)
    cycles = rng.uniform(500, 3000, n_samples)
    return SampleTrace(
        eips=0x1000 + 16 * rng.integers(0, n_eips, n_samples),
        thread_ids=rng.integers(0, n_threads, n_samples).astype(np.int32),
        process_ids=np.zeros(n_samples, dtype=np.int16),
        instructions=np.full(n_samples, period, dtype=np.int64),
        cycles=cycles,
        work_cycles=cycles * 0.5,
        fe_cycles=cycles * 0.2,
        exe_cycles=cycles * 0.2,
        other_cycles=cycles * 0.1,
        processes=("app",),
        sample_period=period,
        frequency_mhz=900,
        workload_name="synthetic",
    )


class TestBuildEIPVs:
    def test_shape_and_interval_count(self):
        trace = synthetic_trace(100, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        assert dataset.n_intervals == 10
        assert dataset.matrix.shape[0] == 10

    def test_rows_sum_to_samples_per_interval(self):
        trace = synthetic_trace(100, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        assert (dataset.matrix.sum(axis=1) == 10).all()

    def test_trailing_partial_interval_dropped(self):
        trace = synthetic_trace(107, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        assert dataset.n_intervals == 10

    def test_interval_cpi_matches_cycle_totals(self):
        trace = synthetic_trace(30, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        expected = trace.cycles[:10].sum() / 10_000
        assert dataset.cpis[0] == pytest.approx(expected)

    def test_histogram_counts_correct(self):
        trace = synthetic_trace(20, period=1_000, n_eips=3)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        for j in range(dataset.n_intervals):
            window = trace.eips[j * 10:(j + 1) * 10]
            for i, eip in enumerate(dataset.eip_index):
                assert dataset.matrix[j, i] == (window == eip).sum()

    def test_interval_shorter_than_period_rejected(self):
        trace = synthetic_trace(10, period=1_000)
        with pytest.raises(ValueError):
            build_eipvs(trace, interval_instructions=500)

    def test_too_short_trace_rejected(self):
        trace = synthetic_trace(5, period=1_000)
        with pytest.raises(ValueError):
            build_eipvs(trace, interval_instructions=10_000)

    def test_variance_and_mean(self):
        trace = synthetic_trace(100, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        assert dataset.cpi_variance == pytest.approx(np.var(dataset.cpis))
        assert dataset.cpi_mean == pytest.approx(np.mean(dataset.cpis))


class TestPerThread:
    def test_points_tagged_by_thread(self):
        trace = synthetic_trace(400, period=1_000, n_threads=2)
        dataset = build_per_thread_eipvs(trace,
                                         interval_instructions=10_000)
        assert set(np.unique(dataset.thread_ids)) == {0, 1}
        assert (dataset.matrix.sum(axis=1) == 10).all()

    def test_threads_with_too_few_samples_dropped(self):
        trace = synthetic_trace(60, period=1_000, n_threads=1)
        # Rewrite tags: thread 0 gets 50 samples, thread 1 only 10.
        trace.thread_ids[:] = 0
        trace.thread_ids[50:] = 1
        dataset = build_per_thread_eipvs(trace,
                                         interval_instructions=20_000)
        assert set(np.unique(dataset.thread_ids)) == {0}
        assert dataset.n_intervals == 2  # 50 samples -> 2 full intervals

    def test_no_thread_long_enough_raises(self):
        trace = synthetic_trace(30, period=1_000, n_threads=6)
        with pytest.raises(ValueError):
            build_per_thread_eipvs(trace, interval_instructions=30_000)

    def test_union_feature_space(self):
        trace = synthetic_trace(400, period=1_000, n_threads=2)
        merged = build_eipvs(trace, interval_instructions=10_000)
        threaded = build_per_thread_eipvs(trace,
                                          interval_instructions=10_000)
        assert set(threaded.eip_index) >= set(merged.eip_index)


class TestDataset:
    def make(self):
        trace = synthetic_trace(100, period=1_000)
        return build_eipvs(trace, interval_instructions=10_000)

    def test_subset(self):
        dataset = self.make()
        sub = dataset.subset(np.array([0, 2, 4]))
        assert sub.n_intervals == 3
        assert sub.n_eips == dataset.n_eips

    def test_prune_features_keeps_hottest(self):
        dataset = self.make()
        pruned = dataset.prune_features(5)
        assert pruned.n_eips == 5
        kept_totals = pruned.matrix.sum(axis=0)
        all_totals = np.sort(dataset.matrix.sum(axis=0))[::-1]
        assert kept_totals.sum() == all_totals[:5].sum()

    def test_prune_noop_when_smaller(self):
        dataset = self.make()
        assert dataset.prune_features(10_000) is dataset

    def test_validation(self):
        dataset = self.make()
        with pytest.raises(ValueError):
            EIPVDataset(matrix=dataset.matrix, cpis=dataset.cpis[:-1],
                        eip_index=dataset.eip_index,
                        interval_instructions=10_000)
        with pytest.raises(ValueError):
            EIPVDataset(matrix=dataset.matrix, cpis=dataset.cpis,
                        eip_index=dataset.eip_index[:-1],
                        interval_instructions=10_000)


@settings(max_examples=20, deadline=None)
@given(n_samples=st.integers(20, 300),
       samples_per_interval=st.integers(2, 20))
def test_eipv_invariants(n_samples, samples_per_interval):
    """Counts conserve samples; CPI equals cycles over instructions."""
    period = 1_000
    trace = synthetic_trace(n_samples, period=period)
    interval = samples_per_interval * period
    if n_samples < samples_per_interval:
        return
    dataset = build_eipvs(trace, interval_instructions=interval)
    assert (dataset.matrix.sum(axis=1) == samples_per_interval).all()
    assert dataset.matrix.sum() == dataset.n_intervals * samples_per_interval
    for j in range(dataset.n_intervals):
        window = slice(j * samples_per_interval,
                       (j + 1) * samples_per_interval)
        expected = trace.cycles[window].sum() / interval
        assert dataset.cpis[j] == pytest.approx(expected)


class TestSparseBuilds:
    def test_sparse_build_matches_dense(self):
        trace = synthetic_trace(200, period=1_000)
        dense = build_eipvs(trace, interval_instructions=10_000)
        sparse = build_eipvs(trace, interval_instructions=10_000,
                             sparse=True)
        assert sparse.is_sparse and not dense.is_sparse
        np.testing.assert_array_equal(sparse.matrix.toarray(), dense.matrix)
        np.testing.assert_array_equal(sparse.cpis, dense.cpis)
        np.testing.assert_array_equal(sparse.eip_index, dense.eip_index)

    def test_sparse_per_thread_matches_dense(self):
        trace = synthetic_trace(400, period=1_000, n_threads=3)
        dense = build_per_thread_eipvs(trace, interval_instructions=10_000)
        sparse = build_per_thread_eipvs(trace, interval_instructions=10_000,
                                        sparse=True)
        np.testing.assert_array_equal(sparse.matrix.toarray(), dense.matrix)
        np.testing.assert_array_equal(sparse.cpis, dense.cpis)
        np.testing.assert_array_equal(sparse.thread_ids, dense.thread_ids)

    def test_interval_cpis_match_add_at(self):
        """bincount-with-weights accumulates like the old np.add.at."""
        trace = synthetic_trace(100, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        rows = np.repeat(np.arange(10), 10)
        cycles = np.zeros(10)
        np.add.at(cycles, rows, trace.cycles[:100])
        np.testing.assert_array_equal(dataset.cpis, cycles / 10_000)

    def test_round_trip_conversions(self):
        trace = synthetic_trace(100, period=1_000)
        dataset = build_eipvs(trace, interval_instructions=10_000)
        sparse = dataset.to_sparse()
        assert sparse.is_sparse
        assert sparse.to_sparse() is sparse
        back = sparse.to_dense()
        assert dataset.to_dense() is dataset
        np.testing.assert_array_equal(back.matrix, dataset.matrix)
        np.testing.assert_array_equal(back.thread_ids, dataset.thread_ids)

    def test_sparse_subset_and_prune(self):
        trace = synthetic_trace(200, period=1_000)
        dense = build_eipvs(trace, interval_instructions=10_000)
        sparse = dense.to_sparse()
        rows = np.array([1, 3, 17])
        np.testing.assert_array_equal(sparse.subset(rows).matrix.toarray(),
                                      dense.subset(rows).matrix)
        np.testing.assert_array_equal(
            sparse.prune_features(5).matrix.toarray(),
            dense.prune_features(5).matrix)

    def test_prune_tie_break_is_lowest_column(self):
        """Equal-count columns: the earlier column index wins."""
        matrix = np.array([[2, 0, 2, 1],
                           [0, 2, 0, 1]], dtype=np.int32)  # totals 2,2,2,2
        dataset = EIPVDataset(matrix=matrix,
                              cpis=np.array([1.0, 2.0]),
                              eip_index=np.array([10, 20, 30, 40]),
                              interval_instructions=1_000)
        pruned = dataset.prune_features(2)
        np.testing.assert_array_equal(pruned.eip_index, [10, 20])
        sparse_pruned = dataset.to_sparse().prune_features(2)
        np.testing.assert_array_equal(sparse_pruned.eip_index, [10, 20])

    def test_thread_ids_default_none_fills_untagged(self):
        dataset = EIPVDataset(matrix=np.ones((3, 2), dtype=np.int32),
                              cpis=np.ones(3),
                              eip_index=np.array([1, 2]),
                              interval_instructions=1_000)
        np.testing.assert_array_equal(dataset.thread_ids, [-1, -1, -1])
