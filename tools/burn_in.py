#!/usr/bin/env python3
"""Burn-in load harness for the ``repro serve`` daemon.

Boots an in-process daemon on an ephemeral port, hammers it from
concurrent client threads with a mixed request stream (hot repeats of
one spec to provoke coalescing, a rotating tail of distinct specs to
provoke cache churn), then asserts the daemon's long-run invariants:

* **No leaked shared memory** — ``live_segments()`` is empty when the
  load stops.
* **No leaked worker processes** — the daemon's warm worker pool
  (census requests fan out across it) shuts down with every forked
  worker joined and dead; ``leaked_workers()`` reports nothing.
* **Bounded cache growth** — the result cache holds at most the
  configured ``cache_max_entries``.
* **Flat RSS** — resident memory after the run is within a tolerance of
  the post-warm-up baseline (the in-process collect memo is bounded by
  the daemon, so a diverse request stream must not grow the process).
* **Byte-identical responses** — for every request kind, the daemon's
  rendered report equals the stdout of a one-shot CLI run of the same
  parameters, byte for byte (profile asserts its deterministic stage
  structure instead; its measured timings are real and therefore vary).
* **Coalescing works** — with concurrent identical requests in flight,
  ``coalesce.follower`` is non-zero while every response stays
  identical.

Exit status 0 = all invariants held.  ``--json PATH`` writes the
collected metrics for CI artifacts.  ``--quick`` shrinks the run to
~30 s for the CI smoke job; the default run is several minutes.

This is a *tool*, not a test: it exercises the real HTTP stack with
real sockets and a real subprocess CLI comparison, which would be too
slow for the tier-1 suite.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.runtime import pool as pool_mod  # noqa: E402
from repro.runtime.metrics import MetricsRegistry  # noqa: E402
from repro.runtime.shm import live_segments  # noqa: E402
from repro.serve import ServeConfig, create_server  # noqa: E402

#: The hot spec: every thread repeats it, so identical requests overlap.
HOT = {"workload": "spec.gzip", "intervals": 12, "seed": 7,
       "scale": "tiny", "k_max": 5}
#: Distinct-spec tail for cache churn (seed rotates per request).
CHURN_WORKLOADS = ("spec.art", "spec.mcf", "spec.gcc", "odbc", "sjas")


def rss_kib() -> int:
    """Resident set size of this process, in KiB (Linux)."""
    with open("/proc/self/status", encoding="ascii") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("no VmRSS in /proc/self/status")


def post(base: str, path: str, body: dict, timeout: float = 120.0):
    """``(status, payload, headers)`` for one POST (headers lower-cased)."""
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            headers = {k.lower(): v for k, v in resp.headers.items()}
            return resp.status, json.loads(resp.read()), headers
    except urllib.error.HTTPError as exc:
        headers = {k.lower(): v for k, v in exc.headers.items()}
        return exc.code, json.loads(exc.read()), headers


def get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def cli_stdout(args: list) -> str:
    """Stdout of one fresh ``repro`` CLI process (the identity oracle)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args], capture_output=True,
        text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin",
             "HOME": tempfile.gettempdir()})
    if proc.returncode != 0:
        raise RuntimeError(f"CLI failed: {args}\n{proc.stderr}")
    return proc.stdout


class BurnIn:
    def __init__(self, seconds: float, threads: int,
                 cache_max_entries: int) -> None:
        self.seconds = seconds
        self.threads = threads
        self.cache_dir = Path(tempfile.mkdtemp(prefix="repro-burnin-"))
        self.metrics = MetricsRegistry()
        self.server = create_server(
            ServeConfig(host="127.0.0.1", port=0, cache_dir=self.cache_dir,
                        max_inflight=2, max_queue=64,
                        default_deadline_s=120.0,
                        cache_max_entries=cache_max_entries,
                        census_jobs=2,  # exercise the warm worker pool
                        memo_max_entries=8),
            metrics=self.metrics)
        self.cache_max_entries = cache_max_entries
        self.base = self.server.address
        self.failures: list = []
        self.responses = 0
        self.shed = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._hot_reports: set = set()

    # -- load -------------------------------------------------------------
    def client(self, client_id: int) -> None:
        rounds = 0
        while not self._stop.is_set():
            rounds += 1
            if rounds % 3 == 0:
                # Churn: a distinct spec (rotating seed) to grow the cache
                # past its bound and prove pruning holds the line.
                body = dict(HOT, workload=CHURN_WORKLOADS[
                    rounds % len(CHURN_WORKLOADS)],
                    seed=100 + (client_id * 1000 + rounds) % 200)
            else:
                body = dict(HOT)
            # Alternate the versioned and legacy spellings of the same
            # endpoint: both must serve (and coalesce) identically.
            path = "/v1/analyze" if rounds % 2 else "/analyze"
            try:
                status, payload, _ = post(self.base, path, body)
            except (OSError, ValueError) as exc:
                self._record_failure(f"transport error: {exc}")
                continue
            with self._lock:
                self.responses += 1
                if status == 429:
                    self.shed += 1
                elif status != 200:
                    self._record_failure(
                        f"unexpected status {status}: {payload}",
                        locked=True)
                elif body == HOT:
                    self._hot_reports.add(payload["report"])

    def _record_failure(self, message: str, locked: bool = False) -> None:
        if locked:
            self.failures.append(message)
            return
        with self._lock:
            self.failures.append(message)

    def start(self) -> None:
        self._server_thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self._server_thread.start()

    def stop(self) -> dict:
        """Final /stats snapshot, then a clean shutdown."""
        _, stats = get(self.base, "/stats")
        self.server.shutdown()
        self.server.server_close()
        self._server_thread.join(10)
        return stats

    def run_load(self) -> dict:

        # Warm-up: one of each request kind, then measure the RSS floor.
        post(self.base, "/v1/analyze", dict(HOT))
        post(self.base, "/v1/census",
             {"workloads": ["spec.gzip", "spec.art"], "k_max": 5})
        post(self.base, "/v1/profile",
             {"workloads": ["spec.gzip"], "intervals": 12, "seed": 7,
              "scale": "tiny", "k_max": 5})
        rss_baseline = rss_kib()

        clients = [threading.Thread(target=self.client, args=(i,))
                   for i in range(self.threads)]
        started = time.monotonic()
        for thread in clients:
            thread.start()
        time.sleep(self.seconds)
        self._stop.set()
        for thread in clients:
            thread.join(60)
        elapsed = time.monotonic() - started

        rss_final = rss_kib()
        return {"elapsed_s": round(elapsed, 1),
                "responses": self.responses, "shed": self.shed,
                "rss_baseline_kib": rss_baseline,
                "rss_final_kib": rss_final}

    # -- invariants -------------------------------------------------------
    def check_invariants(self, report: dict) -> None:
        stats = report["stats"]

        leaked = live_segments()
        self._check(not leaked, "shm", f"leaked segments: {leaked}")

        # Worker-process leak: shut the warm pool down and prove every
        # forked worker is gone (the daemon shares this process's pool).
        pool = pool_mod.default_pool()
        worker_pids = list(pool.worker_pids())
        pool_mod.shutdown_default()
        still_alive = []
        for pid in worker_pids:
            try:
                os.kill(pid, 0)
            except OSError:
                pass
            else:
                still_alive.append(pid)
        self._check(not still_alive and not pool.leaked_workers(),
                    "workers",
                    f"worker processes survived pool shutdown: "
                    f"{still_alive or pool.leaked_workers()}")
        report["pool_workers_seen"] = len(worker_pids)

        entries = stats["cache"]["entries"]
        self._check(entries <= self.cache_max_entries, "cache-bound",
                    f"{entries} entries > bound {self.cache_max_entries}")
        self._check(stats["cache"]["pruned"] > 0, "cache-pruned",
                    "churn never triggered a prune — bound untested")

        # Flat RSS: allow head-room for allocator slack and thread stacks,
        # but catch anything resembling linear growth under load.
        baseline = report["rss_baseline_kib"]
        final = report["rss_final_kib"]
        budget = max(96 * 1024, int(baseline * 0.35))
        self._check(final - baseline <= budget, "rss",
                    f"RSS grew {final - baseline} KiB "
                    f"(baseline {baseline}, budget {budget})")

        self._check(stats["coalesce"]["followers"] > 0, "coalesce",
                    "no request ever coalesced — herd never overlapped")
        self._check(len(self._hot_reports) == 1, "identity",
                    f"hot spec produced {len(self._hot_reports)} distinct "
                    f"reports (must be exactly 1)")
        self._check(stats["coalesce"]["in_flight"] == 0
                    and stats["admission"]["running"] == 0,
                    "drained", "work still in flight after shutdown")
        self._check(not self.failures, "requests",
                    f"{len(self.failures)} failed requests; first: "
                    f"{self.failures[:1]}")

    def check_versioning(self) -> None:
        """Both endpoint spellings answer; only the legacy one deprecates.

        The versioned path is the stable surface: its bodies carry
        ``schema`` and it never sends a ``Deprecation`` header.  The bare
        path keeps working (same bytes in the body) but advertises its
        successor via ``Deprecation`` + ``Link``.
        """
        sv, versioned, vh = post(self.base, "/v1/analyze", dict(HOT))
        sl, legacy, lh = post(self.base, "/analyze", dict(HOT))
        self._check(sv == 200 and sl == 200, "versioned-paths",
                    f"statuses {sv}/{sl}")
        # ``served`` (cache_hit/coalesced) is the documented per-request
        # section; everything else must match across spellings.
        self._check({k: v for k, v in versioned.items() if k != "served"}
                    == {k: v for k, v in legacy.items() if k != "served"},
                    "versioned-paths",
                    "versioned and legacy bodies differ")
        self._check(versioned.get("schema") == 1, "schema-field",
                    f"schema {versioned.get('schema')!r} != 1")
        self._check("deprecation" not in vh, "deprecation-header",
                    "versioned path sent a Deprecation header")
        self._check(lh.get("deprecation") == "true"
                    and "/v1/analyze" in lh.get("link", ""),
                    "deprecation-header",
                    f"legacy path headers missing Deprecation/Link: {lh}")

        status, body, _ = post(
            self.base, "/v1/sweep",
            {"workloads": ["spec.gzip", "spec.art"], "seeds": [7],
             "interval_sizes": [10_000_000], "machines": ["itanium2"]})
        self._check(status == 200 and body.get("schema") == 1
                    and body.get("n_points") == 2, "sweep-endpoint",
                    f"status {status}, body keys {sorted(body)}")

    def check_cli_identity(self) -> None:
        """Every request kind answers byte-identically to a one-shot CLI."""
        status, body, _ = post(self.base, "/analyze", dict(HOT))
        self._check(status == 200, "identity-analyze", f"status {status}")
        expected = cli_stdout(["analyze", HOT["workload"],
                               "--intervals", str(HOT["intervals"]),
                               "--seed", str(HOT["seed"]),
                               "--scale", HOT["scale"],
                               "--k-max", str(HOT["k_max"]), "--no-cache"])
        self._check(expected == body["report"] + "\n", "identity-analyze",
                    "daemon analyze report != CLI stdout")

        status, body, _ = post(self.base, "/census",
                               {"workloads": ["spec.gzip", "spec.art"],
                                "k_max": 5})
        self._check(status == 200, "identity-census", f"status {status}")
        expected = cli_stdout(["census", "spec.gzip", "spec.art",
                               "--k-max", "5", "--cache-dir",
                               str(self.cache_dir / "cli")])
        self._check(expected == body["report"] + "\n", "identity-census",
                    "daemon census report != CLI stdout")

        request = {"workloads": ["spec.gzip"], "intervals": 12, "seed": 7,
                   "scale": "tiny", "k_max": 5}
        status1, first, _ = post(self.base, "/profile", dict(request))
        status2, second, _ = post(self.base, "/profile", dict(request))
        self._check(status1 == 200 and status2 == 200, "identity-profile",
                    f"statuses {status1}/{status2}")
        self._check(first["stages"] == second["stages"] and first["stages"],
                    "identity-profile",
                    "profile stage structure not deterministic")

    def _check(self, ok: bool, name: str, detail: str) -> None:
        if ok:
            print(f"  ok   {name}")
        else:
            print(f"  FAIL {name}: {detail}")
            self.failed_checks.append(f"{name}: {detail}")

    failed_checks: list

    def main(self, json_path: str | None) -> int:
        self.failed_checks = []
        self.start()
        print(f"burn-in: {self.threads} clients for {self.seconds:.0f}s "
              f"against {self.base}")
        report = self.run_load()
        print(f"load done: {report['responses']} responses "
              f"({report['shed']} shed) in {report['elapsed_s']}s")
        print("invariants:")
        self.check_versioning()
        self.check_cli_identity()
        report["stats"] = self.stop()
        self.check_invariants(report)
        report["checks_failed"] = list(self.failed_checks)
        if json_path:
            Path(json_path).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
            print(f"metrics written to {json_path}")
        if self.failed_checks:
            print(f"burn-in FAILED ({len(self.failed_checks)} invariant(s))")
            return 1
        print("burn-in passed")
        return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=180.0,
                        help="load duration (default: 180)")
    parser.add_argument("--threads", type=int, default=8,
                        help="client threads (default: 8)")
    parser.add_argument("--cache-max-entries", type=int, default=32,
                        help="daemon cache bound under churn (default: 32)")
    parser.add_argument("--quick", action="store_true",
                        help="~30s smoke run (CI)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the metrics report to PATH")
    args = parser.parse_args(argv)
    seconds = 30.0 if args.quick else args.seconds
    threads = min(args.threads, 6) if args.quick else args.threads
    burn = BurnIn(seconds=seconds, threads=threads,
                  cache_max_entries=args.cache_max_entries)
    return burn.main(args.json)


if __name__ == "__main__":
    raise SystemExit(main())
